"""Per-process worker state and cell evaluation of the evaluation runtime.

One worker process hosts:

* the attached trained models and datasets (read-only views into the
  service's shared blocks when publication is on — see
  :mod:`repro.runtime.publishing`);
* a **single-slot executor cache**: the calibrated
  :class:`~repro.simulation.inference.ApproximateExecutor` of the most
  recently evaluated model.  Schedules group cells by model
  (:mod:`repro.runtime.scheduling`), so this preserves reuse across a
  model's cells while bounding peak memory to one executor (kernel caches,
  activation buffers and quantized weights included);
* the plan-context arming: every chunk a worker receives carries its plans,
  and the executor's plan-invariant prefix reuse is armed with exactly that
  chunk's plan set before evaluation (bit-exact — checkpoints are only
  substituted on exact fingerprint-prefix matches).

The same functions back both execution modes of the
:class:`~repro.runtime.service.EvaluationService`: worker processes operate
on the module-global :data:`_WORKER_STATE` (populated by the pool
initializer), while the serial in-process path passes the service's own
private state dict, so two live services in one process never collide.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.runtime.publishing import SharedDatasets, SharedTrainedModels
from repro.simulation.inference import ApproximateExecutor, ExecutionPlan
from repro.simulation.metrics import accuracy

#: Pool-worker process state (set by :func:`_init_pool_worker`).  The serial
#: path never touches it — each in-process service owns a private dict.
_WORKER_STATE: dict = {}


def init_worker_state(
    state: dict,
    trained_models,
    datasets,
    max_eval_images: int | None,
    calibration_images: int,
    engine_backend: str | None = None,
    reuse_prefix: bool = True,
    batch_size: int = 256,
) -> None:
    """(Re)initialize one worker's state dict, attaching shared blocks."""
    if isinstance(trained_models, SharedTrainedModels):
        # Attach to the published parameter block: the models rebuilt here
        # hold read-only views into shared memory, not private copies.
        trained_models = trained_models.attach()
    if isinstance(datasets, SharedDatasets):
        # Same for the evaluation data — images dwarf the weights for small
        # models, so this is where most of the per-worker RSS would go.
        datasets = datasets.attach()
    state.clear()
    state.update(
        models=list(trained_models),
        datasets=dict(datasets),
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        engine_backend=engine_backend,
        reuse_prefix=bool(reuse_prefix),
        batch_size=int(batch_size),
        executors={},
        executor_builds=0,
        cells_evaluated=0,
    )


def _init_pool_worker(*initargs) -> None:
    """Pool initializer: populate the process-global worker state."""
    init_worker_state(_WORKER_STATE, *initargs)


def executor_for(
    state: dict, model_index: int, plans: "Sequence[ExecutionPlan] | None" = None
) -> ApproximateExecutor:
    """Calibrated executor of one model, cached per worker (single slot).

    Only the most recent model's executor is kept: schedules group cells by
    model, so this preserves reuse across a model's cells while bounding
    peak memory to one executor — matching the serial sweep's profile.
    When ``plans`` is given (and reuse is on) the executor's plan-invariant
    prefix reuse is armed with that plan set, replacing any previous
    context; consecutive cells of the chunk then resume at the deepest
    matching checkpoint instead of re-running shared layer prefixes.
    """
    executor = state["executors"].get(model_index)
    if executor is None:
        trained = state["models"][model_index]
        dataset = state["datasets"][trained.dataset_name]
        calib = dataset.train_images[: state["calibration_images"]]
        reuse = state.get("reuse_prefix", True)
        executor = ApproximateExecutor(
            trained.model,
            calib,
            engine_backend=state["engine_backend"],
            reuse_plan_invariant_acts=reuse,
            reuse_plan_invariant_prefix=reuse,
        )
        state["executors"].clear()
        state["executors"][model_index] = executor
        state["executor_builds"] += 1
    if plans and state.get("reuse_prefix", True):
        executor.set_plan_context(list(plans))
    return executor


def eval_arrays(state: dict, trained) -> tuple[np.ndarray, np.ndarray]:
    """The (possibly capped) evaluation images and labels of one model."""
    dataset = state["datasets"][trained.dataset_name]
    test_images = dataset.test_images
    test_labels = dataset.test_labels
    max_eval = state["max_eval_images"]
    if max_eval is not None:
        test_images = test_images[:max_eval]
        test_labels = test_labels[:max_eval]
    return test_images, test_labels


def eval_plan_cell(state: dict, model_index: int, plan: ExecutionPlan) -> float:
    """Accuracy of one model under one plan, using the cached executor."""
    trained = state["models"][model_index]
    test_images, test_labels = eval_arrays(state, trained)
    executor = executor_for(state, model_index)
    predictions = executor.predict(test_images, plan, batch_size=state["batch_size"])
    state["cells_evaluated"] += 1
    return accuracy(predictions, test_labels)


def eval_cell_chunk(
    state: dict, chunk: Sequence[tuple[int, ExecutionPlan]]
) -> list[float]:
    """Accuracies of one contiguous schedule chunk, in chunk order.

    Consecutive cells of the same model are grouped: the group's plan set
    is armed as the executor's plan context once, then each plan is
    evaluated in schedule order — so the prefix adjacency arranged by the
    scheduler turns into checkpoint hits here.
    """
    results: list[float] = []
    start = 0
    while start < len(chunk):
        stop = start
        model_index = chunk[start][0]
        while stop < len(chunk) and chunk[stop][0] == model_index:
            stop += 1
        trained = state["models"][model_index]
        plans = [plan for _, plan in chunk[start:stop]]
        executor = executor_for(state, model_index, plans=plans)
        test_images, test_labels = eval_arrays(state, trained)
        for plan in plans:
            predictions = executor.predict(
                test_images, plan, batch_size=state["batch_size"]
            )
            results.append(accuracy(predictions, test_labels))
            state["cells_evaluated"] += 1
        start = stop
    return results


def _eval_cell_chunk_task(chunk: Sequence[tuple[int, ExecutionPlan]]) -> list[float]:
    """Pool task: evaluate one chunk against the process-global state."""
    return eval_cell_chunk(_WORKER_STATE, chunk)


def _timed_eval_cell_chunk_task(
    chunk: Sequence[tuple[int, ExecutionPlan]],
) -> tuple[list[float], float]:
    """Pool task returning ``(accuracies, wall_clock_seconds)``.

    The wall-clock is measured inside the worker — compute time only, no
    queueing or pickling — which is what the service feeds back into its
    :class:`~repro.runtime.cost_model.CellCostModel` for online refinement
    of the per-technique throughput factors.
    """
    start = time.perf_counter()
    results = eval_cell_chunk(_WORKER_STATE, chunk)
    return results, time.perf_counter() - start


__all__ = [
    "init_worker_state",
    "executor_for",
    "eval_arrays",
    "eval_plan_cell",
    "eval_cell_chunk",
]
