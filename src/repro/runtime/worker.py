"""Per-process worker state and cell evaluation of the evaluation runtime.

One worker process hosts:

* the attached trained models and datasets (read-only views into the
  service's shared blocks when publication is on — see
  :mod:`repro.runtime.publishing`);
* a **single-slot executor cache**: the calibrated
  :class:`~repro.simulation.inference.ApproximateExecutor` of the most
  recently evaluated model.  Schedules group cells by model
  (:mod:`repro.runtime.scheduling`), so this preserves reuse across a
  model's cells while bounding peak memory to one executor (kernel caches,
  activation buffers and quantized weights included);
* the plan-context arming: every chunk a worker receives carries its plans,
  and the executor's plan-invariant prefix reuse is armed with exactly that
  chunk's plan set before evaluation (bit-exact — checkpoints are only
  substituted on exact fingerprint-prefix matches).

The same functions back both execution modes of the
:class:`~repro.runtime.service.EvaluationService`: worker processes operate
on the module-global :data:`_WORKER_STATE` (populated by the pool
initializer), while the serial in-process path passes the service's own
private state dict, so two live services in one process never collide.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.runtime.publishing import SharedDatasets, SharedTrainedModels
from repro.runtime.scheduling import (
    DEFAULT_PLAN_GROUP_SIZE,
    model_mac_names,
    plan_group_slices,
    shared_prefix_depths,
)
from repro.simulation.inference import ApproximateExecutor, ExecutionPlan
from repro.simulation.metrics import accuracy

#: Pool-worker process state (set by :func:`_init_pool_worker`).  The serial
#: path never touches it — each in-process service owns a private dict.
_WORKER_STATE: dict = {}

#: Executor counters mirrored into the worker state (and reported per chunk
#: to the service).  Accumulated as *deltas* around each model segment, so
#: the single-slot executor cache dropping an executor never loses counts.
STAT_COUNTERS = (
    "fused_launches",
    "fused_plans_total",
    "prefix_cache_hits",
    "prefix_cache_misses",
    "act_cache_hits",
    "act_cache_misses",
)


def init_worker_state(
    state: dict,
    trained_models,
    datasets,
    max_eval_images: int | None,
    calibration_images: int,
    engine_backend: str | None = None,
    reuse_prefix: bool = True,
    batch_size: int = 256,
    fuse_plans: bool = True,
    plan_group_size: int = DEFAULT_PLAN_GROUP_SIZE,
) -> None:
    """(Re)initialize one worker's state dict, attaching shared blocks."""
    if isinstance(trained_models, SharedTrainedModels):
        # Attach to the published parameter block: the models rebuilt here
        # hold read-only views into shared memory, not private copies.
        trained_models = trained_models.attach()
    if isinstance(datasets, SharedDatasets):
        # Same for the evaluation data — images dwarf the weights for small
        # models, so this is where most of the per-worker RSS would go.
        datasets = datasets.attach()
    state.clear()
    state.update(
        models=list(trained_models),
        datasets=dict(datasets),
        max_eval_images=max_eval_images,
        calibration_images=calibration_images,
        engine_backend=engine_backend,
        reuse_prefix=bool(reuse_prefix),
        batch_size=int(batch_size),
        fuse_plans=bool(fuse_plans),
        plan_group_size=int(plan_group_size),
        executors={},
        executor_builds=0,
        cells_evaluated=0,
    )
    state.update({counter: 0 for counter in STAT_COUNTERS})


def _init_pool_worker(*initargs) -> None:
    """Pool initializer: populate the process-global worker state."""
    init_worker_state(_WORKER_STATE, *initargs)


def executor_for(
    state: dict, model_index: int, plans: "Sequence[ExecutionPlan] | None" = None
) -> ApproximateExecutor:
    """Calibrated executor of one model, cached per worker (single slot).

    Only the most recent model's executor is kept: schedules group cells by
    model, so this preserves reuse across a model's cells while bounding
    peak memory to one executor — matching the serial sweep's profile.
    When ``plans`` is given (and reuse is on) the executor's plan-invariant
    prefix reuse is armed with that plan set, replacing any previous
    context; consecutive cells of the chunk then resume at the deepest
    matching checkpoint instead of re-running shared layer prefixes.
    """
    executor = state["executors"].get(model_index)
    if executor is None:
        trained = state["models"][model_index]
        dataset = state["datasets"][trained.dataset_name]
        calib = dataset.train_images[: state["calibration_images"]]
        reuse = state.get("reuse_prefix", True)
        executor = ApproximateExecutor(
            trained.model,
            calib,
            engine_backend=state["engine_backend"],
            reuse_plan_invariant_acts=reuse,
            reuse_plan_invariant_prefix=reuse,
        )
        state["executors"].clear()
        state["executors"][model_index] = executor
        state["executor_builds"] += 1
    if plans and state.get("reuse_prefix", True):
        executor.set_plan_context(list(plans))
    return executor


def eval_arrays(state: dict, trained) -> tuple[np.ndarray, np.ndarray]:
    """The (possibly capped) evaluation images and labels of one model."""
    dataset = state["datasets"][trained.dataset_name]
    test_images = dataset.test_images
    test_labels = dataset.test_labels
    max_eval = state["max_eval_images"]
    if max_eval is not None:
        test_images = test_images[:max_eval]
        test_labels = test_labels[:max_eval]
    return test_images, test_labels


def eval_plan_cell(state: dict, model_index: int, plan: ExecutionPlan) -> float:
    """Accuracy of one model under one plan, using the cached executor."""
    trained = state["models"][model_index]
    test_images, test_labels = eval_arrays(state, trained)
    executor = executor_for(state, model_index)
    predictions = executor.predict(test_images, plan, batch_size=state["batch_size"])
    state["cells_evaluated"] += 1
    return accuracy(predictions, test_labels)


def _executor_counters(executor: ApproximateExecutor) -> dict[str, int]:
    """Snapshot of the executor's reuse + fused counters, one flat dict."""
    counters = dict(executor.reuse_stats())
    counters.update(executor.fused_stats())
    return counters


def eval_cell_chunk(
    state: dict, chunk: Sequence[tuple[int, ExecutionPlan]]
) -> list[float]:
    """Accuracies of one contiguous schedule chunk, in chunk order.

    Consecutive cells of the same model are grouped: the group's plan set
    is armed as the executor's plan context once, then each *plan group*
    (up to ``plan_group_size`` consecutive plans — the same granularity the
    service's scheduler cuts chunks at) rides one fused multi-plan launch
    per layer via :meth:`~repro.simulation.inference
    .ApproximateExecutor.predict_many` when ``fuse_plans`` is on and the
    backend advertises the capability; otherwise plans run the classic
    per-plan loop.  Both paths are bit-exact, and the prefix adjacency
    arranged by the scheduler turns into checkpoint hits either way.
    """
    results: list[float] = []
    fuse = bool(state.get("fuse_plans", True))
    group_size = int(state.get("plan_group_size", DEFAULT_PLAN_GROUP_SIZE))
    start = 0
    while start < len(chunk):
        stop = start
        model_index = chunk[start][0]
        while stop < len(chunk) and chunk[stop][0] == model_index:
            stop += 1
        trained = state["models"][model_index]
        segment = chunk[start:stop]
        plans = [plan for _, plan in segment]
        executor = executor_for(state, model_index, plans=plans)
        test_images, test_labels = eval_arrays(state, trained)
        before = _executor_counters(executor)
        fused = fuse and executor.fused_multi_plan
        depths = shared_prefix_depths(segment, {model_index: model_mac_names(trained)})
        for group_start, group_stop in plan_group_slices(
            segment, group_size, split_depths=depths
        ):
            group = plans[group_start:group_stop]
            if fused and len(group) > 1:
                predictions_per_plan = executor.predict_many(
                    test_images, group, batch_size=state["batch_size"]
                )
            else:
                predictions_per_plan = [
                    executor.predict(test_images, plan, batch_size=state["batch_size"])
                    for plan in group
                ]
            for predictions in predictions_per_plan:
                results.append(accuracy(predictions, test_labels))
                state["cells_evaluated"] += 1
        after = _executor_counters(executor)
        for counter in STAT_COUNTERS:
            state[counter] = state.get(counter, 0) + after[counter] - before[counter]
        start = stop
    return results


def _eval_cell_chunk_task(chunk: Sequence[tuple[int, ExecutionPlan]]) -> list[float]:
    """Pool task: evaluate one chunk against the process-global state."""
    return eval_cell_chunk(_WORKER_STATE, chunk)


def _timed_eval_cell_chunk_task(
    chunk: Sequence[tuple[int, ExecutionPlan]],
) -> tuple[list[float], float, dict[str, int]]:
    """Pool task returning ``(accuracies, wall_clock_seconds, counters)``.

    The wall-clock is measured inside the worker — compute time only, no
    queueing or pickling — which is what the service feeds back into its
    :class:`~repro.runtime.cost_model.CellCostModel` for online refinement
    of the per-technique throughput factors.  ``counters`` is this chunk's
    *delta* of the :data:`STAT_COUNTERS` (fused launches, prefix/act cache
    hits), which the service aggregates for :meth:`EvaluationService.stats`.
    """
    before = {
        counter: _WORKER_STATE.get(counter, 0) for counter in STAT_COUNTERS
    }
    start = time.perf_counter()
    results = eval_cell_chunk(_WORKER_STATE, chunk)
    elapsed = time.perf_counter() - start
    delta = {
        counter: _WORKER_STATE.get(counter, 0) - before[counter]
        for counter in STAT_COUNTERS
    }
    return results, elapsed, delta


__all__ = [
    "STAT_COUNTERS",
    "init_worker_state",
    "executor_for",
    "eval_arrays",
    "eval_plan_cell",
    "eval_cell_chunk",
]
