"""Unified evaluation runtime: one persistent service behind every campaign.

Scoring per-layer approximation plans against trained models is the
operation behind all of the repo's headline artifacts (the Table III
accuracy sweeps, the Fig. 5 DSE comparison).  This package is the single
execution path that serves them:

* :mod:`~repro.runtime.publishing` — publish-once shared-memory channel
  for trained models and datasets (workers attach read-only views);
* :mod:`~repro.runtime.scheduling` — prefix-aware ordering plus count- and
  cost-balanced contiguous chunking of ``(model, plan)`` cells;
* :mod:`~repro.runtime.cost_model` — :class:`CellCostModel`: prices cells
  from per-layer technique throughput (LUT ~40x perforated), refined
  online from measured chunk wall-clocks;
* :mod:`~repro.runtime.sizing` — pool auto-sizing policy (affinity-aware
  CPU count, load discount, degrade-to-serial clamp of requested counts);
* :mod:`~repro.runtime.worker` — per-process executor cache and cell
  evaluation (shared by the pool and the in-process serial path);
* :mod:`~repro.runtime.service` — :class:`EvaluationService`: persistent
  worker pool, cost-balanced work-stealing batch submission, graceful
  shutdown.

:func:`repro.simulation.campaign.parallel_sweep` /
:func:`~repro.simulation.campaign.plan_sweep` and the DSE engine's
``run_campaign(workers=N)`` are all thin clients of this package.  See
``README.md`` next to this file for the service lifecycle and scheduling
guarantees.
"""

from repro.runtime.publishing import (
    SharedDatasets,
    SharedTrainedModels,
    publish_datasets,
    publish_trained_models,
)
from repro.runtime.cost_model import (
    DEFAULT_TECHNIQUE_COST,
    CellCostModel,
    fingerprint_kind,
    model_layer_work,
)
from repro.runtime.scheduling import (
    contiguous_chunks,
    cost_balanced_chunks,
    model_mac_names,
    order_plan_cells,
    schedule_cells,
    shared_prefix_depths,
)
from repro.runtime.service import EvaluationBatch, EvaluationService
from repro.runtime.sizing import (
    auto_worker_count,
    effective_cpu_count,
    resolve_worker_count,
)

__all__ = [
    "EvaluationBatch",
    "EvaluationService",
    "SharedDatasets",
    "SharedTrainedModels",
    "publish_datasets",
    "publish_trained_models",
    "CellCostModel",
    "DEFAULT_TECHNIQUE_COST",
    "fingerprint_kind",
    "model_layer_work",
    "contiguous_chunks",
    "cost_balanced_chunks",
    "model_mac_names",
    "order_plan_cells",
    "schedule_cells",
    "shared_prefix_depths",
    "auto_worker_count",
    "effective_cpu_count",
    "resolve_worker_count",
]
