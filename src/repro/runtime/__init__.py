"""Unified evaluation runtime: one persistent service behind every campaign.

Scoring per-layer approximation plans against trained models is the
operation behind all of the repo's headline artifacts (the Table III
accuracy sweeps, the Fig. 5 DSE comparison).  This package is the single
execution path that serves them:

* :mod:`~repro.runtime.publishing` — publish-once shared-memory channel
  for trained models and datasets (workers attach read-only views);
* :mod:`~repro.runtime.scheduling` — prefix-aware ordering and contiguous
  chunking of ``(model, plan)`` cells;
* :mod:`~repro.runtime.worker` — per-process executor cache and cell
  evaluation (shared by the pool and the in-process serial path);
* :mod:`~repro.runtime.service` — :class:`EvaluationService`: persistent
  worker pool, batch submission, graceful shutdown.

:func:`repro.simulation.campaign.parallel_sweep` /
:func:`~repro.simulation.campaign.plan_sweep` and the DSE engine's
``run_campaign(workers=N)`` are all thin clients of this package.  See
``README.md`` next to this file for the service lifecycle and scheduling
guarantees.
"""

from repro.runtime.publishing import (
    SharedDatasets,
    SharedTrainedModels,
    publish_datasets,
    publish_trained_models,
)
from repro.runtime.scheduling import (
    contiguous_chunks,
    model_mac_names,
    order_plan_cells,
    schedule_cells,
)
from repro.runtime.service import EvaluationBatch, EvaluationService

__all__ = [
    "EvaluationBatch",
    "EvaluationService",
    "SharedDatasets",
    "SharedTrainedModels",
    "publish_datasets",
    "publish_trained_models",
    "contiguous_chunks",
    "model_mac_names",
    "order_plan_cells",
    "schedule_cells",
]
