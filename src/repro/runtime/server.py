"""`repro serve`: the evaluation runtime behind an HTTP boundary (layer 3).

A long-lived daemon fronting one :class:`~repro.runtime.jobs.manager.
JobManager`: clients POST (model-ref, plan-set) jobs and poll results,
many concurrent campaigns multiplex one warm worker pool with hosted
models already published, and the service-level result cache makes
duplicate cells free across *all* of them.  Stdlib only
(:class:`http.server.ThreadingHTTPServer` + ``json``): no new
dependencies.

API (all JSON)::

    GET  /healthz        {"status": "ok", "models": N, "uptime_s": ...}
    GET  /stats          the repro-runtime-stats/v1.1 payload
    GET  /models         {"models": [{index, name, dataset,
                                      mac_layer_names, context_key}, ...]}
    POST /jobs           {"model": name | "model_index": i, "plans": [...],
                          "session": ..., "label": ...,
                          "priority": int?, "deadline_s": seconds?}
                         -> 202 {"job": {...}}   (409-free: poll the job)
                         -> 400 bad model/plan payloads
                         -> 404 unknown model
                         -> 429 {"reason": "queue_full" | "session_busy"}
    GET  /jobs/<id>      {"job": {id, state, accuracies, cache_hits, ...}}

Plans travel through the fingerprint-preserving codec
(:mod:`repro.runtime.jobs.codec`), so a served job's content-addressed
cell keys — and therefore its cache hits and ledger records — are
identical to running the same job in-process.  Handler threads only
enqueue and snapshot; all evaluation happens on the manager's dispatcher
thread, keeping the engine single-submitter.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.runtime.jobs.codec import PlanCodecError, decode_plans
from repro.runtime.jobs.manager import JobManager
from repro.runtime.jobs.queue import AdmissionError
from repro.runtime.jobs.sessions import SessionError


class JobServer(ThreadingHTTPServer):
    """The daemon: a threading HTTP server bound to one :class:`JobManager`.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`server_port` — the smoke test's handshake).  The server does
    not own the manager's lifecycle by default; :meth:`shutdown_and_close`
    is the one-call graceful teardown the CLI's signal handlers use.
    """

    daemon_threads = True

    def __init__(self, manager: JobManager, host: str = "127.0.0.1", port: int = 0):
        self.manager = manager
        self.started_at = time.monotonic()
        super().__init__((host, port), _JobRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_and_close(self) -> None:
        """Stop serving, cancel queued jobs, close the engine (idempotent)."""
        self.shutdown()
        self.server_close()
        self.manager.close()


class _JobRequestHandler(BaseHTTPRequestHandler):
    """Routes the five endpoints; every response body is JSON."""

    server: JobServer
    protocol_version = "HTTP/1.1"

    # Quiet by default: a polling client would flood stderr with one log
    # line per request.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, **extra) -> None:
        self._send_json(status, {"error": message, **extra})

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        manager = self.server.manager
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._send_json(
                    200,
                    {
                        "status": "ok",
                        "models": len(manager.service.models),
                        "uptime_s": time.monotonic() - self.server.started_at,
                    },
                )
            elif path == "/stats":
                self._send_json(200, manager.stats())
            elif path == "/models":
                self._send_json(200, {"models": manager.models()})
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                try:
                    job = manager.job(job_id)
                except KeyError:
                    self._send_error_json(404, f"unknown job {job_id!r}")
                    return
                self._send_json(200, {"job": job.view()})
            else:
                self._send_error_json(404, f"no such endpoint: {path}")
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_json(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/jobs":
            self._send_error_json(404, f"no such endpoint: {path}")
            return
        try:
            self._submit_job()
        except BrokenPipeError:
            pass
        except Exception as error:  # pragma: no cover - defensive
            self._send_error_json(500, f"{type(error).__name__}: {error}")

    def _submit_job(self) -> None:
        manager = self.server.manager
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_error_json(400, f"request body is not valid JSON: {error}")
            return
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return
        # Resolve the model reference: explicit index or name (+ dataset).
        if "model_index" in payload:
            model_index = payload["model_index"]
            # bool subclasses int: `true` must not sneak in as index 1.
            if (
                not isinstance(model_index, int)
                or isinstance(model_index, bool)
                or not 0 <= model_index < len(manager.service.models)
            ):
                self._send_error_json(404, f"unknown model index {model_index!r}")
                return
        elif "model" in payload:
            try:
                model_index = manager.resolve_model(
                    str(payload["model"]), payload.get("dataset")
                )
            except KeyError as error:
                self._send_error_json(404, str(error))
                return
        else:
            self._send_error_json(400, "payload needs 'model' or 'model_index'")
            return
        try:
            plans = decode_plans(payload.get("plans"))
        except PlanCodecError as error:
            self._send_error_json(400, str(error))
            return
        if not plans:
            self._send_error_json(400, "a job needs at least one plan")
            return
        priority = payload.get("priority")
        if priority is not None and (
            isinstance(priority, bool) or not isinstance(priority, int)
        ):
            self._send_error_json(400, f"priority must be an integer, got {priority!r}")
            return
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None and (
            isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float))
        ):
            self._send_error_json(
                400, f"deadline_s must be a number, got {deadline_s!r}"
            )
            return
        try:
            job = manager.submit(
                model_index,
                plans,
                session=str(payload.get("session", "default")),
                label=str(payload.get("label", "")),
                priority=priority,
                deadline_s=deadline_s,
            )
        except AdmissionError as error:
            self._send_error_json(429, error.message, reason=error.reason)
            return
        except SessionError as error:
            self._send_error_json(400, str(error))
            return
        except (ValueError, TypeError, IndexError) as error:
            self._send_error_json(400, str(error))
            return
        self._send_json(202, {"job": job.view()})


def serve(
    manager: JobManager, host: str = "127.0.0.1", port: int = 0
) -> JobServer:
    """Bind a :class:`JobServer`; the caller drives ``serve_forever()``."""
    return JobServer(manager, host=host, port=port)


__all__ = ["JobServer", "serve"]
