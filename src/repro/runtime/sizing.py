"""Pool auto-sizing: how many workers can actually win on this host.

The evaluation runtime historically sized its pool from ``os.cpu_count()``
and trusted the caller's ``--workers`` flag verbatim.  Both are wrong on
shared or containerized hosts:

* ``os.cpu_count()`` reports the *machine's* cores, not the cores this
  process may run on — a cgroup/affinity-limited CI container reports 4
  while only 1 is schedulable, so a 4-worker pool time-slices one CPU and
  loses to the serial path (``results/BENCH_engine.json`` recorded the
  parallel DSE campaign at 0.54x serial exactly this way);
* a worker count above the schedulable cores can never win: the workers
  contend for the same cores the serial path would have used exclusively,
  and pay pickling + process-switch overhead on top.

This module is the one place that policy lives:

* :func:`effective_cpu_count` — the schedulable-CPU count
  (``len(os.sched_getaffinity(0))``, honoring cgroup cpusets and
  ``taskset``), falling back to ``os.cpu_count()`` where affinity is not
  exposed (macOS);
* :func:`auto_worker_count` — the default pool size when the caller does
  not pass one: the affinity-aware count, discounted by a cheap measured
  check of how busy the host already is (1-minute load average);
* :func:`resolve_worker_count` — the clamp applied to *requested* worker
  counts by ``run_campaign(workers=N)``, the sweeps and the CLI:
  ``min(requested, effective_cpu_count())``, so ``repro dse --workers 4``
  on a 1-CPU box degrades to the serial in-process path (1.0x serial)
  instead of running 4 contending processes (0.54x).

:class:`~repro.runtime.service.EvaluationService` itself honors an
*explicit* ``max_workers`` verbatim (tests rely on exercising the pool
path regardless of host size); the degradation policy applies where user
intent enters the system — the campaign/sweep entry points.
"""

from __future__ import annotations

import os


def effective_cpu_count() -> int:
    """Number of CPUs this process may actually be scheduled on.

    Honors cgroup cpusets and CPU affinity (``os.sched_getaffinity``),
    which ``os.cpu_count()`` ignores; falls back to ``os.cpu_count()`` on
    platforms without affinity support.  Always at least 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _load_average() -> float:
    """1-minute load average, or 0.0 where the host does not expose one."""
    try:
        return float(os.getloadavg()[0])
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX fallback
        return 0.0


def auto_worker_count() -> int:
    """Default pool size: schedulable CPUs minus what the host is busy with.

    The affinity-aware CPU count, discounted by the measured 1-minute load
    average beyond the ~1 core this process itself accounts for — a cheap
    effective-parallelism probe: a pool sized to CPUs that other processes
    already saturate would contend rather than scale.  Always at least 1.
    """
    cpus = effective_cpu_count()
    busy_elsewhere = max(0.0, _load_average() - 1.0)
    return max(1, min(cpus, int(cpus - busy_elsewhere)))


def resolve_worker_count(
    requested: int | None, num_cells: int | None = None
) -> int:
    """Effective worker count for a *requested* one (the degradation policy).

    ``None`` means "size it for me" (:func:`auto_worker_count`); an
    explicit request is honored up to :func:`effective_cpu_count` — more
    workers than schedulable CPUs can only lose to serial, so the excess
    is dropped rather than oversubscribed.  ``num_cells`` optionally caps
    the count at the available work (never more workers than cells).
    The result is always at least 1; 1 means "run the serial in-process
    path" to every caller.
    """
    if requested is None:
        workers = auto_worker_count()
    else:
        requested = int(requested)
        if requested < 1:
            raise ValueError(
                f"worker count must be a positive integer, got {requested}"
            )
        workers = min(requested, effective_cpu_count())
    if num_cells is not None:
        workers = min(workers, max(1, int(num_cells)))
    return max(1, workers)


__all__ = [
    "effective_cpu_count",
    "auto_worker_count",
    "resolve_worker_count",
]
