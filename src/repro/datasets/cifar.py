"""CIFAR loader with a synthetic fallback.

When a local copy of the CIFAR python batches is available (the directories
produced by extracting ``cifar-10-batches-py`` / ``cifar-100-python``), this
module loads the real data so the reproduction can be run against the paper's
actual datasets.  When it is not — as in the offline environment this
repository was built in — it falls back to the procedural generator of
:mod:`repro.datasets.synthetic` with matching class counts, and records that
substitution in the returned dataset's name.
"""

from __future__ import annotations

import os
import pickle

import numpy as np

from repro.datasets.synthetic import Dataset, SyntheticCifarConfig, make_synthetic_cifar


def _load_cifar10_batches(root: str) -> Dataset:
    """Load the original CIFAR-10 python batches from ``root``."""

    def load_batch(path: str) -> tuple[np.ndarray, np.ndarray]:
        with open(path, "rb") as handle:
            batch = pickle.load(handle, encoding="bytes")
        data = batch[b"data"].reshape(-1, 3, 32, 32).transpose(0, 2, 3, 1)
        labels = np.asarray(batch[b"labels"], dtype=np.int64)
        return data.astype(np.float64) / 255.0, labels

    train_x, train_y = [], []
    for i in range(1, 6):
        x, y = load_batch(os.path.join(root, f"data_batch_{i}"))
        train_x.append(x)
        train_y.append(y)
    test_x, test_y = load_batch(os.path.join(root, "test_batch"))
    return Dataset(
        name="cifar10",
        train_images=np.concatenate(train_x),
        train_labels=np.concatenate(train_y),
        test_images=test_x,
        test_labels=test_y,
        num_classes=10,
    )


def _load_cifar100(root: str) -> Dataset:
    """Load the original CIFAR-100 python archive from ``root``."""

    def load_split(path: str) -> tuple[np.ndarray, np.ndarray]:
        with open(path, "rb") as handle:
            split = pickle.load(handle, encoding="bytes")
        data = split[b"data"].reshape(-1, 3, 32, 32).transpose(0, 2, 3, 1)
        labels = np.asarray(split[b"fine_labels"], dtype=np.int64)
        return data.astype(np.float64) / 255.0, labels

    train_x, train_y = load_split(os.path.join(root, "train"))
    test_x, test_y = load_split(os.path.join(root, "test"))
    return Dataset(
        name="cifar100",
        train_images=train_x,
        train_labels=train_y,
        test_images=test_x,
        test_labels=test_y,
        num_classes=100,
    )


def load_cifar_like(
    num_classes: int = 10,
    data_root: str | None = None,
    synthetic_config: SyntheticCifarConfig | None = None,
) -> Dataset:
    """Load CIFAR-10/100 if available locally, else a synthetic equivalent.

    Parameters
    ----------
    num_classes:
        10 or 100 — selects which CIFAR variant (or synthetic equivalent).
    data_root:
        Directory containing ``cifar-10-batches-py`` and/or
        ``cifar-100-python``.  Defaults to the ``REPRO_CIFAR_ROOT``
        environment variable when set.
    synthetic_config:
        Overrides for the synthetic fallback.
    """
    if num_classes not in (10, 100):
        raise ValueError(f"num_classes must be 10 or 100, got {num_classes}")
    if data_root is None:
        data_root = os.environ.get("REPRO_CIFAR_ROOT")
    if data_root:
        if num_classes == 10:
            candidate = os.path.join(data_root, "cifar-10-batches-py")
            if os.path.isdir(candidate):
                return _load_cifar10_batches(candidate)
        else:
            candidate = os.path.join(data_root, "cifar-100-python")
            if os.path.isdir(candidate):
                return _load_cifar100(candidate)
    if synthetic_config is None:
        synthetic_config = SyntheticCifarConfig(num_classes=num_classes, seed=num_classes)
    elif synthetic_config.num_classes != num_classes:
        raise ValueError("synthetic_config.num_classes must match num_classes")
    return make_synthetic_cifar(synthetic_config)
