"""Datasets.

The paper evaluates on CIFAR-10 and CIFAR-100.  Those datasets cannot be
downloaded in this offline environment, so the default data source is a
*procedural CIFAR-like* generator (:mod:`repro.datasets.synthetic`): small
RGB images whose classes are defined by smooth random prototype patterns
plus instance-level nuisance transformations.  The generator has a 10-class
and a 100-class variant so the relative difficulty ordering of the paper
(CIFAR-100 harder than CIFAR-10) is preserved.

:mod:`repro.datasets.cifar` additionally provides a loader for the real
CIFAR python batches when a local copy is available, falling back to the
synthetic generator otherwise, so the same experiment scripts run in both
environments.
"""

from repro.datasets.synthetic import Dataset, SyntheticCifarConfig, make_synthetic_cifar
from repro.datasets.cifar import load_cifar_like

__all__ = [
    "Dataset",
    "SyntheticCifarConfig",
    "make_synthetic_cifar",
    "load_cifar_like",
]
