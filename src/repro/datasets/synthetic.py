"""Procedural CIFAR-like image classification datasets.

Each class is defined by a *prototype*: a smooth random RGB pattern obtained
by low-pass filtering white noise drawn from a class-specific seed.  A sample
of that class is the prototype warped by a small random translation, scaled
in brightness/contrast, mixed with a small amount of a second prototype
(to create class confusability) and corrupted by pixel noise.  The result is
a dataset that

* is learnable by small convolutional networks (so approximate-hardware
  accuracy degradation can be measured meaningfully),
* is not trivially separable (accuracy responds smoothly to perturbations),
* becomes harder as the number of classes grows, matching the CIFAR-10 /
  CIFAR-100 difficulty ordering used in Table III of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """An image-classification dataset split into train and test parts."""

    name: str
    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if self.train_images.shape[0] != self.train_labels.shape[0]:
            raise ValueError("train images / labels size mismatch")
        if self.test_images.shape[0] != self.test_labels.shape[0]:
            raise ValueError("test images / labels size mismatch")

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """Spatial shape ``(height, width, channels)`` of one image."""
        return tuple(self.train_images.shape[1:])  # type: ignore[return-value]

    @property
    def n_train(self) -> int:
        return int(self.train_images.shape[0])

    @property
    def n_test(self) -> int:
        return int(self.test_images.shape[0])


@dataclass(frozen=True)
class SyntheticCifarConfig:
    """Parameters of the procedural dataset generator."""

    num_classes: int = 10
    image_size: int = 16
    train_per_class: int = 160
    test_per_class: int = 40
    noise_std: float = 0.12
    confusion: float = 0.25
    max_shift: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        if self.image_size < 8:
            raise ValueError("image_size must be at least 8")
        if self.train_per_class < 1 or self.test_per_class < 1:
            raise ValueError("per-class sample counts must be positive")
        if not 0.0 <= self.confusion < 1.0:
            raise ValueError("confusion must be in [0, 1)")


def _smooth_noise(rng: np.random.Generator, size: int, channels: int = 3) -> np.ndarray:
    """Low-pass filtered white noise in [0, 1] — one class prototype."""
    coarse = rng.normal(size=(size // 4 + 1, size // 4 + 1, channels))
    # Bilinear upsampling of the coarse grid to the full resolution.
    grid = np.linspace(0, coarse.shape[0] - 1, size)
    x0 = np.floor(grid).astype(int)
    x1 = np.minimum(x0 + 1, coarse.shape[0] - 1)
    frac = grid - x0
    rows = (
        coarse[x0, :, :] * (1 - frac)[:, None, None]
        + coarse[x1, :, :] * frac[:, None, None]
    )
    full = (
        rows[:, x0, :] * (1 - frac)[None, :, None]
        + rows[:, x1, :] * frac[None, :, None]
    )
    full = full - full.min()
    peak = full.max()
    if peak > 0:
        full = full / peak
    return full


def _shift_image(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Translate an image with zero fill (small jitter augmentation)."""
    shifted = np.zeros_like(image)
    h, w, _ = image.shape
    src_y = slice(max(0, -dy), min(h, h - dy))
    src_x = slice(max(0, -dx), min(w, w - dx))
    dst_y = slice(max(0, dy), min(h, h + dy))
    dst_x = slice(max(0, dx), min(w, w + dx))
    shifted[dst_y, dst_x, :] = image[src_y, src_x, :]
    return shifted


def make_synthetic_cifar(config: SyntheticCifarConfig | None = None) -> Dataset:
    """Generate a procedural CIFAR-like dataset according to ``config``."""
    if config is None:
        config = SyntheticCifarConfig()
    rng = np.random.default_rng(config.seed)
    prototypes = np.stack(
        [_smooth_noise(rng, config.image_size) for _ in range(config.num_classes)]
    )

    def sample_class(label: int, count: int) -> np.ndarray:
        images = np.empty(
            (count, config.image_size, config.image_size, 3), dtype=np.float64
        )
        for i in range(count):
            base = prototypes[label]
            if config.confusion > 0:
                other = int(rng.integers(config.num_classes))
                alpha = rng.uniform(0, config.confusion)
                base = (1 - alpha) * base + alpha * prototypes[other]
            dy, dx = rng.integers(-config.max_shift, config.max_shift + 1, size=2)
            image = _shift_image(base, int(dy), int(dx))
            brightness = rng.uniform(0.8, 1.2)
            offset = rng.uniform(-0.08, 0.08)
            image = image * brightness + offset
            image = image + rng.normal(0.0, config.noise_std, size=image.shape)
            images[i] = np.clip(image, 0.0, 1.0)
        return images

    train_images, train_labels, test_images, test_labels = [], [], [], []
    for label in range(config.num_classes):
        train_images.append(sample_class(label, config.train_per_class))
        train_labels.append(np.full(config.train_per_class, label, dtype=np.int64))
        test_images.append(sample_class(label, config.test_per_class))
        test_labels.append(np.full(config.test_per_class, label, dtype=np.int64))

    train_x = np.concatenate(train_images)
    train_y = np.concatenate(train_labels)
    test_x = np.concatenate(test_images)
    test_y = np.concatenate(test_labels)
    # Shuffle the training split so mini-batches mix classes.
    order = rng.permutation(train_x.shape[0])
    name = f"synthetic-cifar{config.num_classes}"
    return Dataset(
        name=name,
        train_images=train_x[order],
        train_labels=train_y[order],
        test_images=test_x,
        test_labels=test_y,
        num_classes=config.num_classes,
    )
