"""End-to-end smoke test of the ``repro serve`` daemon (``make serve-smoke``).

Boots the real CLI entry point as a subprocess — not an in-process
:class:`~repro.runtime.server.JobServer` — so the whole stack is on the
hook: argument parsing, golden-workload hosting, the ephemeral-port
handshake line, HTTP transport, signal handling and shared-memory teardown.

The script asserts, in order:

1. **handshake** — the daemon prints ``serving on http://...`` and answers
   ``/healthz`` with its hosted-model count;
2. **golden parity** — a Table-III sweep submitted over HTTP (the golden
   workload's perforations) reproduces ``results/golden/accuracy_table.json``
   byte-exactly: served jobs run the same engine as the in-process gate;
3. **cross-submission caching** — resubmitting the identical sweep is
   served entirely from the daemon's result cache, and ``/stats`` records
   the hits;
4. **clean shutdown** — SIGTERM drains the daemon (exit code 0, the
   ``shut down cleanly`` line) and leaves no leaked ``/dev/shm`` blocks.

Exit status 0 on success, 1 with a one-line diagnosis on any failure.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
GOLDEN_TABLE = os.path.join(REPO_ROOT, "results", "golden", "accuracy_table.json")
HANDSHAKE = re.compile(r"serving on (http://\S+)")
SHM_DIR = "/dev/shm"
BOOT_TIMEOUT_S = 300.0
SHUTDOWN_TIMEOUT_S = 60.0


def fail(message: str) -> "int":
    print(f"serve-smoke: FAIL — {message}", file=sys.stderr)
    return 1


def _shm_entries() -> set[str]:
    if not os.path.isdir(SHM_DIR):
        return set()
    return set(os.listdir(SHM_DIR))


def _wait_for_handshake(daemon: subprocess.Popen) -> str:
    """Read daemon stdout until the ``serving on <url>`` line appears."""
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        line = daemon.stdout.readline()
        if not line:
            raise RuntimeError(
                f"daemon exited before the handshake (code {daemon.poll()})"
            )
        sys.stdout.write(f"  [daemon] {line}")
        match = HANDSHAKE.search(line)
        if match:
            return match.group(1)
    raise RuntimeError(f"no handshake within {BOOT_TIMEOUT_S:.0f}s")


def _served_accuracy_table(client, perforations) -> dict:
    """The golden ``accuracy_table.json`` payload, rebuilt from served jobs."""
    from repro.runtime.jobs import sweep_over_jobs

    sweep, totals = sweep_over_jobs(
        client, perforations=perforations, session="smoke"
    )
    (model_name, dataset_name), baseline = next(iter(sweep.baselines.items()))
    table = {
        "model": model_name,
        "dataset": dataset_name,
        "baseline_accuracy": baseline,
        "rows": [
            {
                "m": record.m,
                "with_control_variate": record.with_control_variate,
                "accuracy": record.approximate_accuracy,
                "accuracy_loss": record.accuracy_loss,
            }
            for record in sweep.records
        ],
    }
    return table, totals


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.provenance.workload import PERFORATIONS
    from repro.runtime.jobs import HttpJobClient

    if not os.path.exists(GOLDEN_TABLE):
        return fail(f"{GOLDEN_TABLE} missing — run `make bench-refresh` first")
    with open(GOLDEN_TABLE, "r", encoding="utf-8") as handle:
        golden = json.load(handle)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    shm_before = _shm_entries()
    print("serve-smoke: booting `repro serve --golden-workload --port 0` ...")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--golden-workload", "--port", "0"],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        url = _wait_for_handshake(daemon)
        client = HttpJobClient(url, poll_interval=0.05)

        health = client.healthz()
        if health.get("status") != "ok" or health.get("models") != 1:
            return fail(f"unexpected /healthz payload: {health}")
        print(f"serve-smoke: daemon healthy at {url}")

        # 1st sweep over HTTP: byte-exact against the committed golden.
        table, totals = _served_accuracy_table(client, PERFORATIONS)
        if table != golden:
            return fail(
                "served sweep diverged from results/golden/accuracy_table.json: "
                f"served {json.dumps(table, sort_keys=True)} != golden "
                f"{json.dumps(golden, sort_keys=True)}"
            )
        print(
            f"serve-smoke: served sweep matches the golden accuracy table "
            f"({totals['cells']} cells, {totals['cache_misses']} evaluated)"
        )

        # 2nd identical sweep: every cell must come from the result cache.
        table_again, totals_again = _served_accuracy_table(client, PERFORATIONS)
        if table_again != golden:
            return fail("cached resubmission diverged from the golden table")
        if totals_again["cache_hits"] != totals_again["cells"]:
            return fail(
                "duplicate sweep was not fully served from cache: "
                f"{totals_again['cache_hits']}/{totals_again['cells']} hits"
            )
        stats = client.stats()
        recorded_hits = stats["cache"]["hits"]
        if recorded_hits < totals_again["cells"]:
            return fail(
                f"/stats records {recorded_hits} cache hits, expected at "
                f"least {totals_again['cells']}"
            )
        print(
            f"serve-smoke: duplicate submission fully cached "
            f"({totals_again['cache_hits']}/{totals_again['cells']} hits, "
            f"/stats hit ratio {stats['cache']['hit_ratio']:.2f})"
        )

        # Graceful shutdown: SIGTERM, exit 0, the clean-shutdown line, and
        # no shared-memory blocks left behind.
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=SHUTDOWN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            return fail(f"daemon ignored SIGTERM for {SHUTDOWN_TIMEOUT_S:.0f}s")
        tail = daemon.stdout.read() or ""
        for line in tail.splitlines():
            print(f"  [daemon] {line}")
        if daemon.returncode != 0:
            return fail(f"daemon exited with code {daemon.returncode}")
        if "shut down cleanly" not in tail:
            return fail("daemon exited 0 but never printed the clean-shutdown line")
        leaked = _shm_entries() - shm_before
        if leaked:
            return fail(f"leaked shared-memory blocks: {sorted(leaked)}")
        print("serve-smoke: PASS — clean shutdown, no leaked shared memory")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
