"""End-to-end smoke test of the ``repro gateway`` fleet (``make gateway-smoke``).

Boots a two-shard fleet through the real CLI entry points — one adopted
daemon (``repro serve`` started here, handed over via ``--backend``) and
one shard the gateway spawns itself (``--spawn "--golden-workload
--cache-persist ..."``) — so both shard-acquisition paths, the routing
table, argument parsing, handshakes, HTTP transport, signal handling and
shared-memory teardown are all on the hook.

The script asserts, in order:

1. **handshake** — the gateway prints ``gateway on http://...`` and
   answers ``/healthz`` for both shards;
2. **golden parity through the gateway** — a Table-III sweep of the
   golden-workload model, routed through the gateway to its shard,
   reproduces ``results/golden/accuracy_table.json`` byte-exactly;
3. **CLI clients work unchanged** — ``repro sweep --remote <gateway>``
   and ``repro table3 --remote <gateway>`` exit 0 against the fleet
   (their jobs fan across both shards);
4. **fleet-wide caching** — resubmitting the golden sweep is served
   entirely from the owning shard's result cache;
5. **degradation** — killing the adopted shard turns requests for its
   models into a *fast* machine-readable 503 (``reason: "shard_down"``),
   ``/healthz`` reports ``degraded``, and the surviving shard keeps
   serving byte-exact results;
6. **clean shutdown** — SIGTERM drains the gateway (exit code 0, the
   ``shut down cleanly`` line), the spawned shard dies with it, and no
   ``/dev/shm`` blocks are leaked;
7. **warm restart** — a fresh daemon pointed at the same
   ``--cache-persist`` directory serves the whole golden sweep from the
   reloaded cache (hit ratio 1.0 in ``/stats``), still byte-exact.

Exit status 0 on success, 1 with a one-line diagnosis on any failure.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
GOLDEN_TABLE = os.path.join(REPO_ROOT, "results", "golden", "accuracy_table.json")
SMOKE_DIR = os.path.join(REPO_ROOT, ".gateway-smoke")
SERVE_HANDSHAKE = re.compile(r"serving on (http://\S+)")
GATEWAY_HANDSHAKE = re.compile(r"gateway on (http://\S+)")
SHM_DIR = "/dev/shm"
BOOT_TIMEOUT_S = 420.0
SHUTDOWN_TIMEOUT_S = 60.0


def fail(message: str) -> int:
    print(f"gateway-smoke: FAIL — {message}", file=sys.stderr)
    return 1


def _shm_entries() -> set[str]:
    if not os.path.isdir(SHM_DIR):
        return set()
    return set(os.listdir(SHM_DIR))


def _spawn(argv: list[str], env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        argv,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_for_handshake(
    process: subprocess.Popen, pattern: re.Pattern, tag: str
) -> str:
    """Read ``process`` stdout until the handshake line appears."""
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"{tag} exited before the handshake (code {process.poll()})"
            )
        sys.stdout.write(f"  [{tag}] {line}")
        match = pattern.search(line)
        if match:
            return match.group(1)
    raise RuntimeError(f"no {tag} handshake within {BOOT_TIMEOUT_S:.0f}s")


def _terminate(process: subprocess.Popen, tag: str) -> int | None:
    """SIGTERM ``process``, echo its tail, return its exit code (None=hung)."""
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=SHUTDOWN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            return None
    tail = process.stdout.read() or ""
    for line in tail.splitlines():
        print(f"  [{tag}] {line}")
    process.stdout.close()
    return process.returncode


def _golden_sweep(client, golden_index: int, session: str):
    """The golden accuracy table, rebuilt from jobs routed via the gateway."""
    from repro.provenance.workload import PERFORATIONS
    from repro.runtime.jobs import sweep_over_jobs

    sweep, totals = sweep_over_jobs(
        client, perforations=PERFORATIONS, models=[golden_index], session=session
    )
    (model_name, dataset_name), baseline = next(iter(sweep.baselines.items()))
    table = {
        "model": model_name,
        "dataset": dataset_name,
        "baseline_accuracy": baseline,
        "rows": [
            {
                "m": record.m,
                "with_control_variate": record.with_control_variate,
                "accuracy": record.approximate_accuracy,
                "accuracy_loss": record.accuracy_loss,
            }
            for record in sweep.records
        ],
    }
    return table, totals


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    import urllib.error
    import urllib.request

    from repro.runtime.jobs import HttpJobClient

    if not os.path.exists(GOLDEN_TABLE):
        return fail(f"{GOLDEN_TABLE} missing — run `make bench-refresh` first")
    with open(GOLDEN_TABLE, "r", encoding="utf-8") as handle:
        golden = json.load(handle)

    shutil.rmtree(SMOKE_DIR, ignore_errors=True)
    os.makedirs(SMOKE_DIR, exist_ok=True)
    persist_dir = os.path.join(SMOKE_DIR, "result-cache")
    model_cache = os.path.join(SMOKE_DIR, "models")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    shm_before = _shm_entries()

    # Shard 0 is *adopted*: a daemon this script owns, hosting the same
    # architecture as the golden shard but on a reseeded dataset
    # (synthetic-cifar10-seed0) — model sets stay disjoint by dataset.
    print("gateway-smoke: booting the adopted shard (`repro serve --seed 0`) ...")
    adopted = _spawn(
        [
            sys.executable, "-m", "repro", "serve",
            "--models", "vgg13", "--classes", "10", "--seed", "0",
            "--epochs", "1", "--max-eval-images", "64",
            "--cache-dir", model_cache, "--port", "0",
        ],
        env,
    )
    gateway = None
    warm = None
    try:
        adopted_url = _wait_for_handshake(adopted, SERVE_HANDSHAKE, "adopted")

        # The gateway adopts shard 0 and spawns the golden shard itself —
        # both acquisition paths in one topology.  The spawned shard
        # persists its result cache for the warm-restart leg.
        print("gateway-smoke: booting `repro gateway` (adopt + spawn) ...")
        gateway = _spawn(
            [
                sys.executable, "-m", "repro", "gateway",
                "--backend", adopted_url,
                "--spawn", f"--golden-workload --cache-persist {persist_dir}",
                "--retries", "1", "--backoff", "0.01", "--port", "0",
            ],
            env,
        )
        gateway_url = _wait_for_handshake(gateway, GATEWAY_HANDSHAKE, "gateway")
        client = HttpJobClient(gateway_url, poll_interval=0.05)

        health = client.healthz()
        if health.get("status") != "ok" or health.get("models") != 2:
            return fail(f"unexpected /healthz payload: {health}")
        infos = client.models()
        # `--seed 0` reseeds the synthetic dataset through the daemon's
        # SeedBank stream, which suffixes the dataset name (-seed<derived>)
        # so routing keys never collide with the golden shard's.
        golden_infos = [i for i in infos if i["dataset"] == "synthetic-cifar10"]
        adopted_infos = [i for i in infos if "-seed" in i["dataset"]]
        if len(golden_infos) != 1 or len(adopted_infos) != 1:
            return fail(f"unexpected fleet model set: {infos}")
        golden_index = golden_infos[0]["index"]
        golden_shard = golden_infos[0]["shard"]
        adopted_shard = adopted_infos[0]["shard"]
        print(
            f"gateway-smoke: fleet healthy at {gateway_url} "
            f"(golden model on {golden_shard}, adopted on {adopted_shard})"
        )

        # 1st golden sweep *through the gateway*: byte-exact vs the
        # committed golden table.
        table, totals = _golden_sweep(client, golden_index, session="smoke")
        if table != golden:
            return fail(
                "gateway-routed sweep diverged from results/golden/"
                f"accuracy_table.json: served {json.dumps(table, sort_keys=True)} "
                f"!= golden {json.dumps(golden, sort_keys=True)}"
            )
        print(
            f"gateway-smoke: gateway-routed sweep matches the golden table "
            f"({totals['cells']} cells, {totals['cache_misses']} evaluated)"
        )

        # The stock CLI clients against the gateway URL — jobs fan out
        # across both shards (vgg13 is hosted on both, on disjoint
        # datasets).
        for verb in ("sweep", "table3"):
            print(f"gateway-smoke: `repro {verb} --remote {gateway_url}` ...")
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", verb,
                    "--remote", gateway_url, "--models", "vgg13",
                ],
                cwd=REPO_ROOT,
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                timeout=BOOT_TIMEOUT_S,
            )
            if result.returncode != 0:
                tail = "\n".join(result.stdout.splitlines()[-15:])
                return fail(
                    f"`repro {verb} --remote` exited "
                    f"{result.returncode}:\n{tail}"
                )
        print("gateway-smoke: sweep and table3 --remote clients pass (2 shards)")

        # Duplicate golden sweep: every cell served from the shard cache.
        table_again, totals_again = _golden_sweep(client, golden_index, session="smoke")
        if table_again != golden:
            return fail("cached gateway resubmission diverged from the golden table")
        if totals_again["cache_hits"] != totals_again["cells"]:
            return fail(
                "duplicate sweep was not fully served from cache: "
                f"{totals_again['cache_hits']}/{totals_again['cells']} hits"
            )
        stats = client.stats()
        if stats.get("gateway", {}).get("shards") != 2:
            return fail(f"aggregated /stats lacks the gateway section: {stats}")
        print(
            f"gateway-smoke: duplicate submission fully cached "
            f"({totals_again['cache_hits']}/{totals_again['cells']} hits)"
        )

        # Kill the adopted shard: its models must fast-fail with a
        # machine-readable 503, not hang — and the golden shard must keep
        # serving.
        print("gateway-smoke: killing the adopted shard ...")
        adopted.kill()
        adopted.wait(timeout=30)
        payload = json.dumps(
            {
                "model_index": adopted_infos[0]["index"],
                "plans": [{"default": {"kind": "accurate"}, "per_layer": {}}],
            }
        ).encode()
        request = urllib.request.Request(
            f"{gateway_url}/jobs",
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        started = time.monotonic()
        try:
            urllib.request.urlopen(request, timeout=60)
            return fail("submission to a dead shard did not fail")
        except urllib.error.HTTPError as error:
            elapsed = time.monotonic() - started
            if error.code != 503:
                return fail(f"dead shard returned {error.code}, expected 503")
            body = json.loads(error.read().decode())
            if body.get("reason") != "shard_down" or body.get("shard") != adopted_shard:
                return fail(f"503 body is not machine-readable: {body}")
            if elapsed > 30:
                return fail(f"shard_down 503 took {elapsed:.1f}s — that is a hang")
        health = client.healthz()
        if health.get("status") != "degraded":
            return fail(f"/healthz did not degrade after the shard died: {health}")
        table_degraded, _ = _golden_sweep(client, golden_index, session="smoke")
        if table_degraded != golden:
            return fail("surviving shard diverged from golden while degraded")
        print(
            "gateway-smoke: dead shard fast-fails 503 shard_down, "
            "fleet degraded, golden shard still byte-exact"
        )

        # Graceful shutdown: SIGTERM, exit 0, the clean-shutdown line, the
        # spawned shard gone, and no shared-memory blocks left behind.
        code = _terminate(gateway, "gateway")
        if code is None:
            return fail(f"gateway ignored SIGTERM for {SHUTDOWN_TIMEOUT_S:.0f}s")
        if code != 0:
            return fail(f"gateway exited with code {code}")
        gateway = None
        leaked = _shm_entries() - shm_before
        if leaked:
            return fail(f"leaked shared-memory blocks: {sorted(leaked)}")
        print("gateway-smoke: clean gateway shutdown, no leaked shared memory")

        # Warm restart: a fresh daemon on the same persist directory must
        # serve the whole golden sweep from the reloaded cache.
        print("gateway-smoke: warm-restarting the golden shard ...")
        warm = _spawn(
            [
                sys.executable, "-m", "repro", "serve",
                "--golden-workload", "--cache-persist", persist_dir, "--port", "0",
            ],
            env,
        )
        warm_url = _wait_for_handshake(warm, SERVE_HANDSHAKE, "warm")
        warm_client = HttpJobClient(warm_url, poll_interval=0.05)
        warm_stats = warm_client.stats()
        if warm_stats["cache"].get("loaded", 0) <= 0:
            return fail(
                f"restarted daemon loaded nothing from {persist_dir}: "
                f"{warm_stats['cache']}"
            )
        table_warm, totals_warm = _golden_sweep(warm_client, 0, session="warm")
        if table_warm != golden:
            return fail("warm-restarted sweep diverged from the golden table")
        if totals_warm["cache_misses"] != 0:
            return fail(
                "warm restart re-evaluated "
                f"{totals_warm['cache_misses']} cells — the persisted cache "
                "did not carry them"
            )
        warm_stats = warm_client.stats()
        if warm_stats["cache"]["hit_ratio"] != 1.0:
            return fail(
                f"warm-restart hit ratio {warm_stats['cache']['hit_ratio']} != 1.0"
            )
        code = _terminate(warm, "warm")
        if code is None:
            return fail("warm daemon ignored SIGTERM")
        if code != 0:
            return fail(f"warm daemon exited with code {code}")
        warm = None
        leaked = _shm_entries() - shm_before
        if leaked:
            return fail(f"leaked shared-memory blocks after warm leg: {sorted(leaked)}")
        print(
            f"gateway-smoke: PASS — warm restart served "
            f"{totals_warm['cache_hits']}/{totals_warm['cells']} cells from the "
            f"persisted cache (hit ratio 1.0)"
        )
        return 0
    finally:
        for process in (gateway, warm, adopted):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
