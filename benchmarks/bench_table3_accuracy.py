"""Table III — accuracy loss of the six networks with and without the control variate.

Regenerates the structure of Table III: for every network of the paper's
six-network suite, trained on the 10-class and 100-class CIFAR-like datasets,
the accuracy loss (percentage points versus the accurate quantized design) at
perforation m = 1, 2, 3, both with the control variate ("Ours") and without
it ("w/o V"), plus the per-dataset averages.

Expected shape (per the paper): "Ours" stays within a few points of the
accurate design and degrades slowly with m; "w/o V" degrades dramatically;
the 100-class dataset is harder than the 10-class one.  Absolute numbers
differ from the paper because the networks and datasets are scaled down (see
DESIGN.md / EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import bench_epochs, record_bench, write_result

from repro.analysis.reporting import Table
from repro.models.zoo import MODEL_NAMES
from repro.simulation.campaign import (
    TrainedModelCache,
    TrainingSettings,
    accuracy_sweep,
    experiment_dataset,
)

PERFORATIONS = (1, 2, 3)


def _run_sweep():
    cache = TrainedModelCache()
    settings = TrainingSettings(epochs=bench_epochs())
    datasets = {}
    trained = []
    for num_classes in (10, 100):
        dataset = experiment_dataset(num_classes=num_classes)
        datasets[dataset.name] = dataset
        for name in MODEL_NAMES:
            trained.append(cache.load_or_train(name, dataset, settings))
    return accuracy_sweep(trained, datasets, perforations=PERFORATIONS), datasets


def _build_table(sweep, datasets) -> Table:
    table = Table(
        title="Table III: accuracy loss (%) over the six networks "
        "(Ours = perforation + control variate, w/o V = perforation only)",
        columns=["dataset", "network", "float/quant acc"]
        + [f"m={m} {label}" for m in PERFORATIONS for label in ("Ours", "w/o V")],
    )
    for dataset_name in sorted(datasets):
        for name in MODEL_NAMES:
            baseline = sweep.baselines[(name, dataset_name)]
            cells = []
            for m in PERFORATIONS:
                cells.append(sweep.lookup(name, dataset_name, m, True).accuracy_loss)
                cells.append(sweep.lookup(name, dataset_name, m, False).accuracy_loss)
            table.add_row(dataset_name, name, baseline, *cells)
        averages = []
        for m in PERFORATIONS:
            averages.append(sweep.average_loss(dataset_name, m, True))
            averages.append(sweep.average_loss(dataset_name, m, False))
        table.add_row(dataset_name, "AVERAGE", float("nan"), *averages)
    return table


def test_table3_accuracy(benchmark, results_dir):
    """Regenerate Table III (trains or loads 12 reference models)."""
    sweep, datasets = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    table = _build_table(sweep, datasets)
    rendered = table.render(float_format="{:.2f}")
    path = write_result(results_dir, "table3_accuracy.txt", rendered)
    csv_path = write_result(results_dir, "table3_accuracy.csv", table.to_csv())
    from repro.provenance import dataset_digest

    manifest_path = record_bench(
        "table3_accuracy",
        inputs={
            "epochs": bench_epochs(),
            "perforations": list(PERFORATIONS),
            "dataset_digests": {
                name: dataset_digest(ds) for name, ds in datasets.items()
            },
        },
        outputs={
            "baselines": {
                f"{model}@{dataset}": accuracy
                for (model, dataset), accuracy in sweep.baselines.items()
            },
            "average_loss": {
                f"{dataset_name}/m={m}/cv={with_cv}": sweep.average_loss(
                    dataset_name, m, with_cv
                )
                for dataset_name in datasets
                for m in PERFORATIONS
                for with_cv in (True, False)
            },
        },
    )
    print("\n" + rendered)
    print(f"\n[written to {path} and {csv_path}; manifest {manifest_path}]")

    for dataset_name in datasets:
        # The control variate never hurts on average and the damage of the
        # uncorrected approximation grows with m.
        for m in PERFORATIONS:
            ours = sweep.average_loss(dataset_name, m, True)
            without = sweep.average_loss(dataset_name, m, False)
            assert ours <= without + 1e-9
        without_losses = [sweep.average_loss(dataset_name, m, False) for m in PERFORATIONS]
        assert without_losses[0] <= without_losses[-1] + 1e-9
        # "Ours" stays usable even at the most aggressive perforation.
        assert sweep.average_loss(dataset_name, 3, True) < 25.0
