"""Prefix-reuse sweep throughput and shared-memory dataset publishing.

Two measurements back the plan-invariant-prefix acceptance criteria:

* **Sweep wall-clock** on a Table III-style per-layer plan set (plans keep a
  growing prefix of the network exact and approximate the remaining layers
  with m = 1..3, plus the accurate baseline): :func:`plan_sweep` with prefix
  reuse armed must be faster than the same serial sweep with all cross-plan
  reuse disabled, with **bit-identical records**.
* **Per-worker footprint** of the multi-process sweep: publishing the
  trained parameters *and the evaluation datasets* through the shared-memory
  store must shrink the pickled per-worker payload by a large factor, and —
  measured via ``/proc/<pid>/smaps_rollup`` in a fresh subprocess — the
  private (unique) bytes a worker holds after materializing the evaluation
  images.

Results are printed, written to ``results/sweep_prefix.txt`` and merged into
the machine-readable ``results/BENCH_engine.json`` ledger.  Run via pytest
(``pytest -m engine benchmarks/bench_sweep_prefix.py``) or as a script.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import tempfile
import time

import numpy as np
import pytest

from conftest import record_bench, update_json_result, write_result

from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
from repro.models.zoo import build_model
from repro.nn.optimizers import SGD
from repro.nn.training import Trainer
from repro.simulation.campaign import (
    TrainedModel,
    plan_sweep,
    publish_datasets,
    publish_trained_models,
)
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    PerforatedProduct,
)

pytestmark = pytest.mark.engine

PREFIX_MIN_SPEEDUP = 1.1
PAYLOAD_MIN_REDUCTION = 5.0

_SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))


def _setup() -> tuple[TrainedModel, dict, list]:
    """One quickly trained network plus a per-layer Table III-style plan set."""
    dataset = make_synthetic_cifar(
        SyntheticCifarConfig(
            num_classes=10, image_size=32, train_per_class=20, test_per_class=20, seed=3
        )
    )
    model = build_model("vgg13", num_classes=10, rng=np.random.default_rng(0))
    trainer = Trainer(model, SGD(learning_rate=0.05), rng=np.random.default_rng(1))
    trainer.fit(dataset.train_images, dataset.train_labels, epochs=1, batch_size=32)
    trained = TrainedModel(
        name="vgg13", dataset_name=dataset.name, model=model, float_accuracy=0.0
    )
    mac_names = [node.name for node in model.conv_dense_nodes()]
    plans = [("baseline", ExecutionPlan.uniform(AccurateProduct()))]
    # Per-layer plans: exact through a growing prefix, perforated after —
    # the sweep shape whose work is dominated by plan-invariant prefixes.
    for depth in (len(mac_names) - 2, len(mac_names) - 4):
        for m in (1, 2, 3):
            plan = ExecutionPlan.uniform(AccurateProduct())
            for name in mac_names[depth:]:
                plan = plan.with_layer(name, PerforatedProduct(m))
            plans.append((f"exact{depth}_m{m}", plan))
    return trained, {dataset.name: dataset}, plans


def run_prefix_sweep_wallclock(trained, datasets, plans) -> dict:
    """Serial plan sweep with vs without cross-plan reuse (bit-identical)."""
    kwargs = dict(max_eval_images=None, calibration_images=64, max_workers=1)

    start = time.perf_counter()
    no_reuse = plan_sweep(trained, datasets, plans, reuse_prefix=False, **kwargs)
    no_reuse_time = time.perf_counter() - start

    start = time.perf_counter()
    reused = plan_sweep(trained, datasets, plans, reuse_prefix=True, **kwargs)
    reuse_time = time.perf_counter() - start

    assert reused == no_reuse, "prefix reuse changed sweep results"
    return {
        "plans": len(plans),
        "no_reuse_time": no_reuse_time,
        "reuse_time": reuse_time,
        "speedup": no_reuse_time / reuse_time,
    }


def _worker_private_kib(payload_path: str) -> int | None:
    """Private (unique) KiB a fresh worker *adds* by materializing the
    evaluation images from ``payload_path`` — the per-worker RSS share that
    cannot be shared with siblings.  Measured as the smaps_rollup private
    delta around unpickle + touch, so interpreter/numpy baseline noise
    cancels out.  Linux-only; None when unavailable."""
    script = (
        "import pickle, sys\n"
        "def private_kib():\n"
        "    total = 0\n"
        "    for line in open('/proc/self/smaps_rollup'):\n"
        "        if line.startswith(('Private_Clean:', 'Private_Dirty:')):\n"
        "            total += int(line.split()[1])\n"
        "    return total\n"
        "import numpy  # noqa: F401 - pay the import before the baseline\n"
        "import repro.simulation.campaign  # noqa: F401\n"
        "before = private_kib()\n"
        "payload = pickle.load(open(sys.argv[1], 'rb'))\n"
        "if hasattr(payload, 'attach'):\n"
        "    payload = payload.attach()\n"
        "touched = 0.0\n"
        "for ds in payload.values():\n"
        "    touched += float(ds.test_images.sum()) + float(ds.train_images.sum())\n"
        "print(max(0, private_kib() - before))\n"
    )
    if not os.path.exists("/proc/self/smaps_rollup"):  # pragma: no cover
        return None
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script, payload_path],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return int(out.stdout.strip())


def run_shared_payload_footprint(trained, datasets) -> dict:
    """Pickled per-worker payload bytes and private worker memory, shared
    (SharedArrayStore handles) vs unshared (full copies)."""
    plain_models = len(pickle.dumps(trained, protocol=pickle.HIGHEST_PROTOCOL))
    plain_datasets = len(pickle.dumps(datasets, protocol=pickle.HIGHEST_PROTOCOL))

    model_store = publish_trained_models(trained)
    dataset_store = publish_datasets(datasets)
    result: dict = {}
    try:
        shared_models = len(pickle.dumps(model_store, protocol=pickle.HIGHEST_PROTOCOL))
        shared_datasets = len(
            pickle.dumps(dataset_store, protocol=pickle.HIGHEST_PROTOCOL)
        )
        result = {
            "plain_payload_bytes": plain_models + plain_datasets,
            "shared_payload_bytes": shared_models + shared_datasets,
            "payload_reduction": (plain_models + plain_datasets)
            / (shared_models + shared_datasets),
            "bytes_in_shared_block": model_store.nbytes_shared()
            + dataset_store.nbytes_shared(),
        }
        # Per-worker private memory after materializing the eval images.
        with tempfile.TemporaryDirectory() as tmp:
            plain_path = os.path.join(tmp, "plain.pkl")
            shared_path = os.path.join(tmp, "shared.pkl")
            with open(plain_path, "wb") as handle:
                pickle.dump(datasets, handle, protocol=pickle.HIGHEST_PROTOCOL)
            with open(shared_path, "wb") as handle:
                pickle.dump(dataset_store, handle, protocol=pickle.HIGHEST_PROTOCOL)
            plain_kib = _worker_private_kib(plain_path)
            shared_kib = _worker_private_kib(shared_path)
        result["worker_private_kib_plain"] = plain_kib
        result["worker_private_kib_shared"] = shared_kib
        if plain_kib is not None and shared_kib is not None:
            result["worker_private_kib_saved"] = plain_kib - shared_kib
    finally:
        model_store.unlink()
        dataset_store.unlink()
    return result


def _render(sweep: dict, footprint: dict) -> str:
    lines = [
        "plan-invariant prefix reuse + shared-memory dataset publishing",
        "",
        f"Per-layer plan sweep ({sweep['plans']} plans, serial, bit-identical):",
        f"  no reuse  {sweep['no_reuse_time']:8.2f} s",
        f"  reuse     {sweep['reuse_time']:8.2f} s",
        f"  speedup   {sweep['speedup']:.2f}x  (required >= {PREFIX_MIN_SPEEDUP:.2f}x)",
        "",
        "Per-worker payload (models + datasets shipped to each worker):",
        f"  plain copies   {footprint['plain_payload_bytes']:12,} bytes",
        f"  shared handles {footprint['shared_payload_bytes']:12,} bytes"
        f"  ({footprint['payload_reduction']:.0f}x smaller; "
        f"{footprint['bytes_in_shared_block']:,} bytes published once)",
    ]
    plain_kib = footprint.get("worker_private_kib_plain")
    shared_kib = footprint.get("worker_private_kib_shared")
    if plain_kib is not None and shared_kib is not None:
        lines += [
            "",
            "Worker private (unique) memory added by materializing the eval images:",
            f"  plain copies   {plain_kib:10,} KiB",
            f"  shared views   {shared_kib:10,} KiB"
            f"  ({footprint['worker_private_kib_saved']:,} KiB stay shared)",
        ]
    return "\n".join(lines)


def test_sweep_prefix_benchmark(results_dir):
    """Prefix reuse speeds up the per-layer sweep bit-exactly, and shared
    publishing shrinks the per-worker payload by a large factor."""
    trained, datasets, plans = _setup()
    sweep = run_prefix_sweep_wallclock([trained], datasets, plans)
    footprint = run_shared_payload_footprint([trained], datasets)
    rendered = _render(sweep, footprint)
    path = write_result(results_dir, "sweep_prefix.txt", rendered)
    json_path = update_json_result(
        results_dir, "sweep_prefix", {"sweep": sweep, "footprint": footprint}
    )
    from repro.provenance import dataset_digest, model_digest

    manifest_path = record_bench(
        "sweep_prefix",
        inputs={
            "model_digest": model_digest(trained.model),
            "dataset_digests": {
                name: dataset_digest(ds) for name, ds in datasets.items()
            },
            "plans": len(plans),
            "min_speedup": PREFIX_MIN_SPEEDUP,
            "min_payload_reduction": PAYLOAD_MIN_REDUCTION,
        },
        outputs={"sweep": sweep, "footprint": footprint},
    )
    print("\n" + rendered)
    print(f"\n[written to {path} and {json_path}; manifest {manifest_path}]")
    assert sweep["speedup"] >= PREFIX_MIN_SPEEDUP
    assert footprint["payload_reduction"] >= PAYLOAD_MIN_REDUCTION


if __name__ == "__main__":
    trained_main, datasets_main, plans_main = _setup()
    sweep_main = run_prefix_sweep_wallclock([trained_main], datasets_main, plans_main)
    footprint_main = run_shared_payload_footprint([trained_main], datasets_main)
    print(_render(sweep_main, footprint_main))
