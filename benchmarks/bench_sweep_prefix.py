"""Prefix-reuse sweep throughput and shared-memory dataset publishing.

Two measurements back the plan-invariant-prefix acceptance criteria:

* **Sweep wall-clock** on a Table III-style per-layer plan set (plans keep a
  growing prefix of the network exact and approximate the remaining layers
  with m = 1..3, plus the accurate baseline): :func:`plan_sweep` with prefix
  reuse armed must be faster than the same serial sweep with all cross-plan
  reuse disabled, with **bit-identical records**.
* **Fused multi-plan sweep wall-clock** on a DSE-generation-shaped workload
  (a ~37-plan candidate stack of per-layer sensitivity families — the shape
  every NSGA-II generation produces): :func:`plan_sweep` with ``fuse_plans=True``
  must beat the same serial prefix-reusing sweep with fusion disabled by at
  least :data:`FUSED_MIN_SPEEDUP`, with **bit-identical records**.  The
  ratio is regression-gated as ``sweep_prefix.fused_sweep.speedup_vs_unfused``
  in ``repro verify-results``.
* **Per-worker footprint** of the multi-process sweep: publishing the
  trained parameters *and the evaluation datasets* through the shared-memory
  store must shrink the pickled per-worker payload by a large factor, and —
  measured via ``/proc/<pid>/smaps_rollup`` in a fresh subprocess — the
  private (unique) bytes a worker holds after materializing the evaluation
  images.

Results are printed, written to ``results/sweep_prefix.txt`` and merged into
the machine-readable ``results/BENCH_engine.json`` ledger.  Run via pytest
(``pytest -m engine benchmarks/bench_sweep_prefix.py``) or as a script.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import tempfile
import time

import numpy as np
import pytest

from conftest import record_bench, update_json_result, write_result

from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
from repro.models.zoo import build_model
from repro.nn.optimizers import SGD
from repro.nn.training import Trainer
from repro.simulation.campaign import (
    TrainedModel,
    plan_sweep,
    publish_datasets,
    publish_trained_models,
)
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    PerforatedProduct,
)

pytestmark = pytest.mark.engine

PREFIX_MIN_SPEEDUP = 1.1
FUSED_MIN_SPEEDUP = 1.3
PAYLOAD_MIN_REDUCTION = 5.0
#: Evaluation-set size of the fused-sweep workload — the screening regime of
#: a DSE generation: many candidate plans over a modest image set, where the
#: per-plan divergence launches (quantize + im2col + matmul per plan) are the
#: marginal cost fusion collapses into shared stacked launches.
FUSED_EVAL_IMAGES = 500
#: Alternating timing repetitions per path; each path's time is the best
#: (min) across them, which strips scheduler/allocator noise from the
#: regression-gated ratio without changing what is measured.
FUSED_TIMING_REPS = 3

_SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))


def _setup() -> tuple[TrainedModel, dict, list]:
    """One quickly trained network plus a per-layer Table III-style plan set."""
    dataset = make_synthetic_cifar(
        SyntheticCifarConfig(
            num_classes=10, image_size=32, train_per_class=20, test_per_class=20, seed=3
        )
    )
    model = build_model("vgg13", num_classes=10, rng=np.random.default_rng(0))
    trainer = Trainer(model, SGD(learning_rate=0.05), rng=np.random.default_rng(1))
    trainer.fit(dataset.train_images, dataset.train_labels, epochs=1, batch_size=32)
    trained = TrainedModel(
        name="vgg13", dataset_name=dataset.name, model=model, float_accuracy=0.0
    )
    mac_names = [node.name for node in model.conv_dense_nodes()]
    plans = [("baseline", ExecutionPlan.uniform(AccurateProduct()))]
    # Per-layer plans: exact through a growing prefix, perforated after —
    # the sweep shape whose work is dominated by plan-invariant prefixes.
    for depth in (len(mac_names) - 2, len(mac_names) - 4):
        for m in (1, 2, 3):
            plan = ExecutionPlan.uniform(AccurateProduct())
            for name in mac_names[depth:]:
                plan = plan.with_layer(name, PerforatedProduct(m))
            plans.append((f"exact{depth}_m{m}", plan))
    return trained, {dataset.name: dataset}, plans


def _fused_setup(trained: TrainedModel) -> tuple[list, dict]:
    """The fused-sweep evaluation target: the same trained network pointed
    at a larger synthetic test split (:data:`FUSED_EVAL_IMAGES` images).

    The fused path's wins are array-level (shared im2col/quantize, mask-
    deduped matmuls, act-terms computed once), so they scale with evaluated
    bytes while both paths' fixed costs (calibration, the one shared prefix
    walk) do not; the larger split measures the array regime instead of the
    fixed-cost floor.
    """
    dataset = make_synthetic_cifar(
        SyntheticCifarConfig(
            num_classes=10,
            image_size=32,
            train_per_class=20,
            test_per_class=FUSED_EVAL_IMAGES // 10,
            seed=3,
        )
    )
    eval_target = TrainedModel(
        name=trained.name,
        dataset_name=dataset.name,
        model=trained.model,
        float_accuracy=trained.float_accuracy,
    )
    return [eval_target], {dataset.name: dataset}


def _fused_plan_set(model) -> list:
    """A DSE-generation-shaped candidate stack (~37 plans).

    Mixes uniform perforated plans, per-layer exact-prefix variants at
    several divergence depths, and a few exact duplicates — the population
    an NSGA-II generation actually hands the evaluator (crossover routinely
    re-proposes parents).  Duplicates and shared prefixes are the structure
    the fused path exploits; the unfused comparator sees the same list.
    """
    mac_names = [node.name for node in model.conv_dense_nodes()]
    plans = [("baseline", ExecutionPlan.uniform(AccurateProduct()))]
    # Single-layer families: every (m, control-variate) setting applied to
    # ONE layer with the rest exact — the per-layer sensitivity screen that
    # seeds the paper's DSE.  Each family shares the whole prefix, diverges
    # at one layer with one shared input, and re-converges to an identical
    # all-exact fingerprint suffix — the structure the fused walk collapses
    # into one stacked launch per layer.  The screened layers are the last
    # convolutions, where the checkpointed prefix covers most of the
    # network and the divergence launch is the marginal cost per plan.
    for depth in range(len(mac_names) - 6, len(mac_names) - 1):
        for m in (1, 2, 3):
            for cv in (True, False):
                plan = ExecutionPlan.uniform(AccurateProduct()).with_layer(
                    mac_names[depth], PerforatedProduct(m, use_control_variate=cv)
                )
                label = f"layer{depth}_m{m}{'_cv' if cv else ''}"
                plans.append((label, plan))
    # Re-proposed survivors: same plan objects under fresh labels
    # (crossover routinely re-emits parents into the next generation).
    resubmitted = [plans[i] for i in (1, 7, 13, 19, 25, 3)]
    plans += [(f"resubmit_{label}", plan) for label, plan in resubmitted]
    return plans


def run_fused_sweep_wallclock(trained, datasets, plans) -> dict:
    """Serial fused vs unfused plan sweep (both prefix-reusing, bit-identical).

    Times :data:`FUSED_TIMING_REPS` alternating unfused/fused pairs and
    keeps each path's best wall-clock; every repetition's records are
    asserted bit-identical across the two paths.
    """
    kwargs = dict(
        max_eval_images=FUSED_EVAL_IMAGES, calibration_images=32, max_workers=1,
        reuse_prefix=True,
    )

    unfused_times: list[float] = []
    fused_times: list[float] = []
    for _ in range(FUSED_TIMING_REPS):
        start = time.perf_counter()
        unfused = plan_sweep(trained, datasets, plans, fuse_plans=False, **kwargs)
        unfused_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        fused = plan_sweep(trained, datasets, plans, fuse_plans=True, **kwargs)
        fused_times.append(time.perf_counter() - start)

        assert fused == unfused, "fused multi-plan path changed sweep results"
    unfused_time = min(unfused_times)
    fused_time = min(fused_times)
    return {
        "plans": len(plans),
        "eval_images": FUSED_EVAL_IMAGES,
        "unfused_time": unfused_time,
        "fused_time": fused_time,
        "speedup_vs_unfused": unfused_time / fused_time,
    }


def run_prefix_sweep_wallclock(trained, datasets, plans) -> dict:
    """Serial plan sweep with vs without cross-plan reuse (bit-identical)."""
    kwargs = dict(max_eval_images=None, calibration_images=64, max_workers=1)

    start = time.perf_counter()
    no_reuse = plan_sweep(trained, datasets, plans, reuse_prefix=False, **kwargs)
    no_reuse_time = time.perf_counter() - start

    start = time.perf_counter()
    reused = plan_sweep(trained, datasets, plans, reuse_prefix=True, **kwargs)
    reuse_time = time.perf_counter() - start

    assert reused == no_reuse, "prefix reuse changed sweep results"
    return {
        "plans": len(plans),
        "no_reuse_time": no_reuse_time,
        "reuse_time": reuse_time,
        "speedup": no_reuse_time / reuse_time,
    }


def _worker_private_kib(payload_path: str) -> int | None:
    """Private (unique) KiB a fresh worker *adds* by materializing the
    evaluation images from ``payload_path`` — the per-worker RSS share that
    cannot be shared with siblings.  Measured as the smaps_rollup private
    delta around unpickle + touch, so interpreter/numpy baseline noise
    cancels out.  Linux-only; None when unavailable."""
    script = (
        "import pickle, sys\n"
        "def private_kib():\n"
        "    total = 0\n"
        "    for line in open('/proc/self/smaps_rollup'):\n"
        "        if line.startswith(('Private_Clean:', 'Private_Dirty:')):\n"
        "            total += int(line.split()[1])\n"
        "    return total\n"
        "import numpy  # noqa: F401 - pay the import before the baseline\n"
        "import repro.simulation.campaign  # noqa: F401\n"
        "before = private_kib()\n"
        "payload = pickle.load(open(sys.argv[1], 'rb'))\n"
        "if hasattr(payload, 'attach'):\n"
        "    payload = payload.attach()\n"
        "touched = 0.0\n"
        "for ds in payload.values():\n"
        "    touched += float(ds.test_images.sum()) + float(ds.train_images.sum())\n"
        "print(max(0, private_kib() - before))\n"
    )
    if not os.path.exists("/proc/self/smaps_rollup"):  # pragma: no cover
        return None
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script, payload_path],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return int(out.stdout.strip())


def run_shared_payload_footprint(trained, datasets) -> dict:
    """Pickled per-worker payload bytes and private worker memory, shared
    (SharedArrayStore handles) vs unshared (full copies)."""
    plain_models = len(pickle.dumps(trained, protocol=pickle.HIGHEST_PROTOCOL))
    plain_datasets = len(pickle.dumps(datasets, protocol=pickle.HIGHEST_PROTOCOL))

    model_store = publish_trained_models(trained)
    dataset_store = publish_datasets(datasets)
    result: dict = {}
    try:
        shared_models = len(pickle.dumps(model_store, protocol=pickle.HIGHEST_PROTOCOL))
        shared_datasets = len(
            pickle.dumps(dataset_store, protocol=pickle.HIGHEST_PROTOCOL)
        )
        result = {
            "plain_payload_bytes": plain_models + plain_datasets,
            "shared_payload_bytes": shared_models + shared_datasets,
            "payload_reduction": (plain_models + plain_datasets)
            / (shared_models + shared_datasets),
            "bytes_in_shared_block": model_store.nbytes_shared()
            + dataset_store.nbytes_shared(),
        }
        # Per-worker private memory after materializing the eval images.
        with tempfile.TemporaryDirectory() as tmp:
            plain_path = os.path.join(tmp, "plain.pkl")
            shared_path = os.path.join(tmp, "shared.pkl")
            with open(plain_path, "wb") as handle:
                pickle.dump(datasets, handle, protocol=pickle.HIGHEST_PROTOCOL)
            with open(shared_path, "wb") as handle:
                pickle.dump(dataset_store, handle, protocol=pickle.HIGHEST_PROTOCOL)
            plain_kib = _worker_private_kib(plain_path)
            shared_kib = _worker_private_kib(shared_path)
        result["worker_private_kib_plain"] = plain_kib
        result["worker_private_kib_shared"] = shared_kib
        if plain_kib is not None and shared_kib is not None:
            result["worker_private_kib_saved"] = plain_kib - shared_kib
    finally:
        model_store.unlink()
        dataset_store.unlink()
    return result


def _render(sweep: dict, fused: dict, footprint: dict) -> str:
    lines = [
        "plan-invariant prefix reuse + shared-memory dataset publishing",
        "",
        f"Per-layer plan sweep ({sweep['plans']} plans, serial, bit-identical):",
        f"  no reuse  {sweep['no_reuse_time']:8.2f} s",
        f"  reuse     {sweep['reuse_time']:8.2f} s",
        f"  speedup   {sweep['speedup']:.2f}x  (required >= {PREFIX_MIN_SPEEDUP:.2f}x)",
        "",
        f"Fused multi-plan sweep ({fused['plans']} DSE-generation plans, "
        f"{fused['eval_images']} images, serial, bit-identical):",
        f"  unfused   {fused['unfused_time']:8.2f} s  (prefix reuse on)",
        f"  fused     {fused['fused_time']:8.2f} s",
        f"  speedup   {fused['speedup_vs_unfused']:.2f}x  "
        f"(required >= {FUSED_MIN_SPEEDUP:.2f}x)",
        "",
        "Per-worker payload (models + datasets shipped to each worker):",
        f"  plain copies   {footprint['plain_payload_bytes']:12,} bytes",
        f"  shared handles {footprint['shared_payload_bytes']:12,} bytes"
        f"  ({footprint['payload_reduction']:.0f}x smaller; "
        f"{footprint['bytes_in_shared_block']:,} bytes published once)",
    ]
    plain_kib = footprint.get("worker_private_kib_plain")
    shared_kib = footprint.get("worker_private_kib_shared")
    if plain_kib is not None and shared_kib is not None:
        lines += [
            "",
            "Worker private (unique) memory added by materializing the eval images:",
            f"  plain copies   {plain_kib:10,} KiB",
            f"  shared views   {shared_kib:10,} KiB"
            f"  ({footprint['worker_private_kib_saved']:,} KiB stay shared)",
        ]
    return "\n".join(lines)


def test_sweep_prefix_benchmark(results_dir):
    """Prefix reuse speeds up the per-layer sweep bit-exactly, and shared
    publishing shrinks the per-worker payload by a large factor."""
    trained, datasets, plans = _setup()
    sweep = run_prefix_sweep_wallclock([trained], datasets, plans)
    fused_plans = _fused_plan_set(trained.model)
    fused_models, fused_datasets = _fused_setup(trained)
    fused = run_fused_sweep_wallclock(fused_models, fused_datasets, fused_plans)
    footprint = run_shared_payload_footprint([trained], datasets)
    rendered = _render(sweep, fused, footprint)
    path = write_result(results_dir, "sweep_prefix.txt", rendered)
    json_path = update_json_result(
        results_dir,
        "sweep_prefix",
        {"sweep": sweep, "fused_sweep": fused, "footprint": footprint},
    )
    from repro.provenance import dataset_digest, model_digest

    manifest_path = record_bench(
        "sweep_prefix",
        inputs={
            "model_digest": model_digest(trained.model),
            "dataset_digests": {
                name: dataset_digest(ds) for name, ds in datasets.items()
            },
            "plans": len(plans),
            "fused_plans": len(fused_plans),
            "fused_eval_images": FUSED_EVAL_IMAGES,
            "fused_timing_reps": FUSED_TIMING_REPS,
            "min_speedup": PREFIX_MIN_SPEEDUP,
            "min_fused_speedup": FUSED_MIN_SPEEDUP,
            "min_payload_reduction": PAYLOAD_MIN_REDUCTION,
        },
        outputs={"sweep": sweep, "fused_sweep": fused, "footprint": footprint},
    )
    print("\n" + rendered)
    print(f"\n[written to {path} and {json_path}; manifest {manifest_path}]")
    assert sweep["speedup"] >= PREFIX_MIN_SPEEDUP
    # 10 % noise margin matches the regression gate's
    # SPEEDUP_NOISE_TOLERANCE (and bench_dse_search's floor assert); the
    # recorded value is still gated against the full 1.3 target by
    # `repro verify-results`.
    assert fused["speedup_vs_unfused"] >= FUSED_MIN_SPEEDUP * 0.9, (
        f"fused sweep ran at {fused['speedup_vs_unfused']:.2f}x the per-plan "
        f"path — the batched launches must clear {FUSED_MIN_SPEEDUP:.2f}x "
        f"(minus the 10% timing-noise margin)"
    )
    assert footprint["payload_reduction"] >= PAYLOAD_MIN_REDUCTION


if __name__ == "__main__":
    trained_main, datasets_main, plans_main = _setup()
    sweep_main = run_prefix_sweep_wallclock([trained_main], datasets_main, plans_main)
    fused_models_main, fused_datasets_main = _fused_setup(trained_main)
    fused_main = run_fused_sweep_wallclock(
        fused_models_main, fused_datasets_main, _fused_plan_set(trained_main.model)
    )
    footprint_main = run_shared_payload_footprint([trained_main], datasets_main)
    print(_render(sweep_main, fused_main, footprint_main))
