"""Serve-layer throughput benchmark: jobs/sec and cache-hit ratio over HTTP.

Boots the job daemon in-process (:class:`~repro.runtime.server.JobServer`
over a :class:`~repro.runtime.jobs.JobManager`) and drives it with N
concurrent synthetic clients, each its own HTTP session submitting the same
round-robin pool of single-cell evaluation jobs.  Because the pool repeats
across clients, the steady state exercises exactly what a shared daemon
sees: the first submission of each unique recipe is evaluated, every
duplicate — from any client — is served from the service-level result
cache.

Recorded into the ``serve_throughput`` section of the machine-readable
``results/BENCH_engine.json`` ledger:

* ``jobs_pps`` / ``cells_pps`` — end-to-end served throughput (submit +
  poll + result decode over HTTP).  Regression-gated as tolerance *floors*
  by ``repro verify-results``: improvements always pass, a collapse fails.
* ``cache_hit_ratio`` and the hit/miss split — **deterministic** by
  construction (the dispatcher serializes execution, so exactly one miss
  per unique recipe regardless of client interleaving) and therefore
  compared exactly against the golden ledger: a changed ratio means the
  content-addressed recipe key or the dedup itself changed.
* ``wall_clock_s`` — observability only (ignored by the gate).

The ``gateway_throughput`` section measures the same client fan driven
through a two-shard :class:`~repro.runtime.fleet.GatewayServer` fleet with
persisted result caches: ``jobs_pps`` (floor-gated — routing overhead must
not collapse throughput) plus ``warm_hit_ratio``, the cache-hit ratio of
re-running the identical job set against a *restarted* fleet reloading the
same persist directories — exactly 1.0 by construction, compared exactly.

Run via pytest (``pytest -m serve benchmarks/bench_serve_throughput.py``)
or as a script.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import numpy as np
import pytest

from conftest import record_bench, update_json_result

from repro.runtime.jobs import HttpJobClient, JobManager
from repro.runtime.server import JobServer
from repro.simulation.campaign import TrainedModel
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    PerforatedProduct,
)

pytestmark = pytest.mark.serve

CLIENTS = 4
JOBS_PER_CLIENT = 6

#: The shared pool of unique single-cell jobs the synthetic clients draw
#: from, round-robin.  6 unique recipes x 4 clients x 6 jobs = 24 cells of
#: which 18 are cross-client duplicates: hit ratio 0.75 by construction.
PLAN_POOL = (
    ExecutionPlan.uniform(AccurateProduct()),
    ExecutionPlan.uniform(PerforatedProduct(1)),
    ExecutionPlan.uniform(PerforatedProduct(1, use_control_variate=False)),
    ExecutionPlan.uniform(PerforatedProduct(2)),
    ExecutionPlan.uniform(PerforatedProduct(2, use_control_variate=False)),
    ExecutionPlan.uniform(PerforatedProduct(3)),
)


def _setup():
    """One quickly trained tiny network (the bench_dse_search workload)."""
    from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
    from repro.models.zoo import build_model
    from repro.nn.optimizers import SGD
    from repro.nn.training import Trainer
    from repro.simulation.campaign import TrainedModel

    dataset = make_synthetic_cifar(
        SyntheticCifarConfig(
            num_classes=10,
            image_size=16,
            train_per_class=40,
            test_per_class=16,
            noise_std=0.12,
            confusion=0.25,
            seed=21,
        )
    )
    model = build_model(
        "vgg13", num_classes=10, base_width=8, rng=np.random.default_rng(0)
    )
    trainer = Trainer(model, SGD(learning_rate=0.08), rng=np.random.default_rng(1))
    trainer.fit(dataset.train_images, dataset.train_labels, epochs=2, batch_size=32)
    trained = TrainedModel(
        name="vgg13", dataset_name=dataset.name, model=model, float_accuracy=0.0
    )
    return trained, dataset


def run_serve_throughput(trained, dataset, clients=CLIENTS, jobs_per_client=JOBS_PER_CLIENT) -> dict:
    """Fan N synthetic HTTP clients over one daemon; measure served rates."""
    manager = JobManager(
        [trained],
        {dataset.name: dataset},
        calibration_images=64,
        max_queue_depth=clients * jobs_per_client + 1,
        max_inflight_per_session=jobs_per_client + 1,
    )
    server = JobServer(manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    errors: list[BaseException] = []

    def client_loop(index: int) -> None:
        try:
            client = HttpJobClient(server.url, poll_interval=0.01)
            for step in range(jobs_per_client):
                plans = [PLAN_POOL[(index + step) % len(PLAN_POOL)]]
                job_id = client.submit_job(
                    0, plans, session=f"client-{index}", label=f"bench-{index}-{step}"
                )
                client.wait(job_id, timeout=600)
        except BaseException as error:  # surfaced after the join
            errors.append(error)

    try:
        start = time.perf_counter()
        workers = [
            threading.Thread(target=client_loop, args=(index,))
            for index in range(clients)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        wall = time.perf_counter() - start
        if errors:
            raise errors[0]
        stats = HttpJobClient(server.url).stats()
    finally:
        server.shutdown_and_close()
        thread.join(timeout=10)

    cache = stats["cache"]
    jobs_total = clients * jobs_per_client
    cells_total = cache["hits"] + cache["misses"]
    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "unique_recipes": len(PLAN_POOL),
        "jobs_completed": stats["jobs"]["completed"],
        "cells_total": cells_total,
        "cache_hits": cache["hits"],
        "cache_misses": cache["misses"],
        "cache_hit_ratio": cache["hit_ratio"],
        "jobs_pps": jobs_total / wall,
        "cells_pps": cells_total / wall,
        "wall_clock_s": wall,
    }


def _drive_clients(url: str, clients: int, jobs_per_client: int, models: int) -> float:
    """Fan N synthetic HTTP clients at ``url``; return the wall time.

    Client ``i``'s job ``s`` targets global model ``(i + s) % models`` with
    recipe ``PLAN_POOL[(i + s) % len(PLAN_POOL)]`` — deterministic, so the
    unique (model, recipe) set (and with it every cache counter) is fixed
    regardless of thread interleaving.
    """
    errors: list[BaseException] = []

    def client_loop(index: int) -> None:
        try:
            client = HttpJobClient(url, poll_interval=0.01)
            for step in range(jobs_per_client):
                plans = [PLAN_POOL[(index + step) % len(PLAN_POOL)]]
                job_id = client.submit_job(
                    (index + step) % models,
                    plans,
                    session=f"client-{index}",
                    label=f"bench-{index}-{step}",
                )
                client.wait(job_id, timeout=600)
        except BaseException as error:  # surfaced after the join
            errors.append(error)

    start = time.perf_counter()
    workers = [
        threading.Thread(target=client_loop, args=(index,))
        for index in range(clients)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]
    return wall


def run_gateway_throughput(
    trained, dataset, clients=CLIENTS, jobs_per_client=JOBS_PER_CLIENT
) -> dict:
    """The same client fan through a two-shard gateway, cold then warm.

    Shard 0 hosts the bench model, shard 1 the same trained graph under a
    second architecture name (disjoint routing keys, zero extra training).
    Both shards persist their result cache; after the cold pass the whole
    fleet is torn down and rebooted on the same persist directories, and
    the identical job set is replayed — every cell must come back from the
    reloaded caches (``warm_hit_ratio`` exactly 1.0).
    """
    from repro.runtime.fleet import Backend, BackendPool, GatewayServer

    hosted = [
        trained,
        TrainedModel(
            name="vgg16",
            dataset_name=dataset.name,
            model=trained.model,
            float_accuracy=trained.float_accuracy,
        ),
    ]

    def run_pass(persist_root: str) -> tuple[dict, float]:
        """Boot the fleet fresh, drive the fan, return (stats, wall)."""
        managers, servers, threads = [], [], []
        gateway = gw_thread = None
        try:
            for index, model in enumerate(hosted):
                manager = JobManager(
                    [model],
                    {dataset.name: dataset},
                    calibration_images=64,
                    max_queue_depth=clients * jobs_per_client + 1,
                    max_inflight_per_session=jobs_per_client + 1,
                    cache_persist_dir=os.path.join(persist_root, f"shard{index}"),
                )
                server = JobServer(manager)
                thread = threading.Thread(target=server.serve_forever, daemon=True)
                thread.start()
                managers.append(manager)
                servers.append(server)
                threads.append(thread)
            pool = BackendPool(
                [
                    Backend(f"shard{index}", server.url)
                    for index, server in enumerate(servers)
                ]
            )
            gateway = GatewayServer(pool)
            gw_thread = threading.Thread(target=gateway.serve_forever, daemon=True)
            gw_thread.start()
            wall = _drive_clients(
                gateway.url, clients, jobs_per_client, models=len(hosted)
            )
            stats = HttpJobClient(gateway.url).stats()
            return stats, wall
        finally:
            if gateway is not None:
                gateway.shutdown_and_close()
                gw_thread.join(timeout=10)
            for server, thread in zip(servers, threads):
                server.shutdown_and_close()
                thread.join(timeout=10)

    with tempfile.TemporaryDirectory(prefix="bench-gateway-") as persist_root:
        cold_stats, cold_wall = run_pass(persist_root)
        warm_stats, _warm_wall = run_pass(persist_root)

    jobs_total = clients * jobs_per_client
    cold_cache, warm_cache = cold_stats["cache"], warm_stats["cache"]
    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "shards": len(hosted),
        "unique_recipes": len(PLAN_POOL),
        "jobs_completed": cold_stats["jobs"]["completed"],
        "cells_total": cold_cache["hits"] + cold_cache["misses"],
        "cache_hits": cold_cache["hits"],
        "cache_misses": cold_cache["misses"],
        "cache_hit_ratio": cold_cache["hit_ratio"],
        "jobs_pps": jobs_total / cold_wall,
        "warm_loaded": warm_cache["loaded"],
        "warm_hits": warm_cache["hits"],
        "warm_misses": warm_cache["misses"],
        "warm_hit_ratio": warm_cache["hit_ratio"],
        "wall_clock_s": cold_wall,
    }


def _render(metrics: dict) -> list[str]:
    return [
        "Serve throughput: N concurrent HTTP clients over one job daemon",
        f"({metrics['clients']} clients x {metrics['jobs_per_client']} jobs, "
        f"{metrics['unique_recipes']} unique recipes)",
        "",
        f"  jobs served        {metrics['jobs_completed']:6d}"
        f"  ({metrics['jobs_pps']:8.2f} jobs/s)",
        f"  cells served       {metrics['cells_total']:6d}"
        f"  ({metrics['cells_pps']:8.2f} cells/s)",
        f"  cache hit ratio    {metrics['cache_hit_ratio']:6.2f}"
        f"  ({metrics['cache_hits']} hits / {metrics['cache_misses']} misses)",
        f"  wall clock         {metrics['wall_clock_s']:8.2f} s",
    ]


def _render_gateway(metrics: dict) -> list[str]:
    return [
        "Gateway throughput: the same client fan through a 2-shard fleet",
        f"({metrics['clients']} clients x {metrics['jobs_per_client']} jobs, "
        f"{metrics['shards']} shards, persisted caches)",
        "",
        f"  jobs served        {metrics['jobs_completed']:6d}"
        f"  ({metrics['jobs_pps']:8.2f} jobs/s through the gateway)",
        f"  cold hit ratio     {metrics['cache_hit_ratio']:6.2f}"
        f"  ({metrics['cache_hits']} hits / {metrics['cache_misses']} misses)",
        f"  warm hit ratio     {metrics['warm_hit_ratio']:6.2f}"
        f"  ({metrics['warm_hits']} hits, {metrics['warm_loaded']} reloaded "
        f"from disk)",
        f"  wall clock         {metrics['wall_clock_s']:8.2f} s (cold pass)",
    ]


def test_serve_throughput_benchmark(results_dir):
    """N concurrent clients against one daemon: duplicates dedup to one
    evaluation per unique recipe; jobs/sec and the hit ratio land in the
    JSON ledger under the regression gate."""
    trained, dataset = _setup()
    metrics = run_serve_throughput(trained, dataset)
    json_path = update_json_result(results_dir, "serve_throughput", metrics)
    from repro.provenance import dataset_digest, model_digest

    manifest_path = record_bench(
        "serve_throughput",
        inputs={
            "model_digest": model_digest(trained.model),
            "dataset_digest": dataset_digest(dataset),
            "clients": CLIENTS,
            "jobs_per_client": JOBS_PER_CLIENT,
            "unique_recipes": len(PLAN_POOL),
        },
        outputs=metrics,
    )
    print("\n" + "\n".join(_render(metrics)))
    print(f"[serve throughput written to {json_path}; manifest {manifest_path}]")

    # The dedup invariant: execution is serialized by the dispatcher, so
    # exactly one miss per unique recipe no matter how clients interleave.
    assert metrics["jobs_completed"] == CLIENTS * JOBS_PER_CLIENT
    assert metrics["cache_misses"] == len(PLAN_POOL)
    expected_hits = CLIENTS * JOBS_PER_CLIENT - len(PLAN_POOL)
    assert metrics["cache_hits"] == expected_hits
    assert metrics["cache_hit_ratio"] == expected_hits / (CLIENTS * JOBS_PER_CLIENT)
    assert metrics["jobs_pps"] > 0


def test_gateway_throughput_benchmark(results_dir):
    """The same fan through a two-shard gateway fleet: routed jobs/sec is
    floor-gated, and a restarted fleet on the same persist directories
    replays the whole job set from the reloaded caches (hit ratio exactly
    1.0)."""
    trained, dataset = _setup()
    metrics = run_gateway_throughput(trained, dataset)
    json_path = update_json_result(results_dir, "gateway_throughput", metrics)
    from repro.provenance import dataset_digest, model_digest

    manifest_path = record_bench(
        "gateway_throughput",
        inputs={
            "model_digest": model_digest(trained.model),
            "dataset_digest": dataset_digest(dataset),
            "clients": CLIENTS,
            "jobs_per_client": JOBS_PER_CLIENT,
            "shards": metrics["shards"],
            "unique_recipes": len(PLAN_POOL),
        },
        outputs=metrics,
    )
    print("\n" + "\n".join(_render_gateway(metrics)))
    print(f"[gateway throughput written to {json_path}; manifest {manifest_path}]")

    jobs_total = CLIENTS * JOBS_PER_CLIENT
    # Deterministic by construction: the (model, recipe) pairing collapses
    # to len(PLAN_POOL) unique cells split across the two shards, each
    # evaluated exactly once in the cold pass...
    assert metrics["jobs_completed"] == jobs_total
    assert metrics["cache_misses"] == len(PLAN_POOL)
    assert metrics["cache_hits"] == jobs_total - len(PLAN_POOL)
    # ...and never again after the restart: the warm fleet answers every
    # cell from the persisted caches.
    assert metrics["warm_loaded"] == len(PLAN_POOL)
    assert metrics["warm_misses"] == 0
    assert metrics["warm_hits"] == jobs_total
    assert metrics["warm_hit_ratio"] == 1.0
    assert metrics["jobs_pps"] > 0


if __name__ == "__main__":
    trained_main, dataset_main = _setup()
    print("\n".join(_render(run_serve_throughput(trained_main, dataset_main))))
    print()
    print("\n".join(_render_gateway(run_gateway_throughput(trained_main, dataset_main))))
