"""Shared infrastructure of the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
artifacts (trained reference models) are cached on disk by
:class:`repro.simulation.campaign.TrainedModelCache`, so the first run of the
accuracy benches trains the networks with the numpy engine and later runs
reuse them.  Each bench writes its regenerated table to ``results/`` next to
this directory and prints it to the terminal section of the pytest output.

Environment knobs:

* ``REPRO_BENCH_EPOCHS`` — training epochs of the reference models (default 6);
* ``REPRO_BENCH_FULL`` — set to ``1`` to run the Fig. 5 comparison on all six
  networks and both datasets (default: a representative subset, because the
  ALWANN baseline's library search is expensive in pure numpy);
* ``REPRO_CACHE_DIR`` — where trained models are cached.
"""

from __future__ import annotations

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Machine-readable benchmark ledger: every perf-tracking bench merges its
#: metrics into one JSON file under its own section, so the perf trajectory
#: of the engine is diffable across PRs.
BENCH_JSON = "BENCH_engine.json"


def bench_epochs() -> int:
    """Training epochs used by the accuracy benches."""
    return int(os.environ.get("REPRO_BENCH_EPOCHS", "6"))


def full_scale() -> bool:
    """Whether to run the expensive benches at the paper's full scale."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory receiving the regenerated tables (created on demand)."""
    path = os.path.abspath(RESULTS_DIR)
    os.makedirs(path, exist_ok=True)
    return path


def write_result(results_dir: str, name: str, content: str) -> str:
    """Write one regenerated table to ``results/<name>`` and return its path."""
    path = os.path.join(results_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content + "\n")
    return path


def update_json_result(results_dir: str, section: str, payload: dict) -> str:
    """Merge ``payload`` under ``section`` of ``results/BENCH_engine.json``.

    Each bench owns one section and overwrites only it, so running benches
    in any order (or individually) keeps the other sections intact.
    Returns the file path.
    """
    path = os.path.join(results_dir, BENCH_JSON)
    data: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            data = {}
    data[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
