"""Shared infrastructure of the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
artifacts (trained reference models) are cached on disk by
:class:`repro.simulation.campaign.TrainedModelCache`, so the first run of the
accuracy benches trains the networks with the numpy engine and later runs
reuse them.  Each bench writes its regenerated table to ``results/`` next to
this directory and prints it to the terminal section of the pytest output.

Provenance: every write goes through the atomic writers of
:mod:`repro.provenance` (temp file + rename — an interrupted bench can
never truncate the shared ``BENCH_engine.json`` ledger), and every bench
records a :class:`~repro.provenance.manifest.RunManifest` via
:func:`record_bench`, embedding the full runtime environment (package
versions, backend availability *with import-failure reasons*, host facts)
next to its metrics under ``results/manifests/``.

Environment knobs:

* ``REPRO_BENCH_EPOCHS`` — training epochs of the reference models (default 6);
* ``REPRO_BENCH_FULL`` — set to ``1`` to run the Fig. 5 comparison on all six
  networks and both datasets (default: a representative subset, because the
  ALWANN baseline's library search is expensive in pure numpy);
* ``REPRO_CACHE_DIR`` — where trained models are cached;
* ``REPRO_MANIFEST_DIR`` — where run manifests land (default:
  ``results/manifests``).
"""

from __future__ import annotations

import os

import pytest

from repro.provenance import record_run, update_json_atomic, write_text_atomic

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Machine-readable benchmark ledger: every perf-tracking bench merges its
#: metrics into one JSON file under its own section, so the perf trajectory
#: of the engine is diffable across PRs (and regression-gated against
#: ``results/golden/`` by ``repro verify-results``).
BENCH_JSON = "BENCH_engine.json"


def bench_epochs() -> int:
    """Training epochs used by the accuracy benches."""
    return int(os.environ.get("REPRO_BENCH_EPOCHS", "6"))


def full_scale() -> bool:
    """Whether to run the expensive benches at the paper's full scale."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory receiving the regenerated tables (created on demand)."""
    path = os.path.abspath(RESULTS_DIR)
    os.makedirs(path, exist_ok=True)
    return path


def write_result(results_dir: str, name: str, content: str) -> str:
    """Atomically write one regenerated table to ``results/<name>``."""
    path = os.path.join(results_dir, name)
    write_text_atomic(path, content + "\n")
    return path


def update_json_result(results_dir: str, section: str, payload: dict) -> str:
    """Merge ``payload`` under ``section`` of ``results/BENCH_engine.json``.

    Each bench owns one section and overwrites only it, so running benches
    in any order (or individually) keeps the other sections intact.  The
    merge is atomic (temp file + rename): an interrupt mid-write leaves
    the previous complete ledger in place instead of a truncated file.
    Returns the file path.
    """
    path = os.path.join(results_dir, BENCH_JSON)
    update_json_atomic(path, section, payload)
    return path


def record_bench(
    name: str, inputs: dict | None = None, outputs: dict | None = None
) -> str:
    """Write the :class:`RunManifest` of one benchmark.

    ``inputs`` is whatever identifies the measured configuration (workload
    shape, epochs, model/dataset digests where available); ``outputs`` the
    measured metrics — typically the same payload merged into the
    ``BENCH_JSON`` ledger section.  The provenance environment block
    (including e.g. *why* numba is unavailable) is stamped automatically.
    Returns the manifest path.
    """
    with record_run("bench", label=name, inputs=inputs) as manifest:
        manifest.outputs.update(outputs or {})
    return manifest.path
