"""DSE search benchmark: evaluations-to-front and wall-clock per strategy.

Runs the greedy descent and the seeded NSGA-II on a quickly trained network
over the full per-layer perforation space and records, per strategy:

* ``evaluations`` — fresh accuracy evaluations spent;
* ``evals_to_front`` — evaluations until the last point that survived on
  the final Pareto front had been scored (how fast the front saturates);
* ``front_size``, ``wall_clock_s``, ``energy_reduction_percent`` and the
  best point's loss.

The metrics merge into the machine-readable ``results/BENCH_engine.json``
ledger (section ``dse_search``) so the search efficiency is diffable across
PRs, next to the engine-throughput and sweep-prefix sections.  Run via
pytest (``pytest -m dse benchmarks/bench_dse_search.py``) or as a script.

A second benchmark measures the **parallel campaign** path: the same greedy
campaign fanned across ``run_campaign(workers=N)`` evaluation-service
workers, recording workers-vs-wallclock (section ``dse_parallel_campaign``)
and asserting the Pareto front is identical — same points, bit-exact
accuracies — to the serial run.  ``speedup_vs_serial`` must never drop
below 1.0 (the regression gate holds it to an absolute floor): a worker
request beyond the schedulable CPUs degrades to the serial in-process path
(``resolve_worker_count``), so on a single-core container every worker
count runs the *same* serial code and the speedup is 1.0 by construction —
the raw wall-clocks of each run are still recorded in
``workers_vs_wallclock`` for observability.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from conftest import record_bench, update_json_result, write_result

from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
from repro.dse import get_strategy, run_campaign
from repro.models.zoo import build_model
from repro.nn.optimizers import SGD
from repro.nn.training import Trainer
from repro.simulation.campaign import TrainedModel

pytestmark = pytest.mark.dse

MAX_LOSS = 0.5
NSGA_BUDGET = 80


def _setup() -> tuple[TrainedModel, object]:
    """One quickly trained network on a small synthetic dataset."""
    dataset = make_synthetic_cifar(
        SyntheticCifarConfig(
            num_classes=10,
            image_size=16,
            train_per_class=40,
            test_per_class=16,
            noise_std=0.12,
            confusion=0.25,
            seed=21,
        )
    )
    model = build_model("vgg13", num_classes=10, base_width=8, rng=np.random.default_rng(0))
    trainer = Trainer(model, SGD(learning_rate=0.08), rng=np.random.default_rng(1))
    trainer.fit(dataset.train_images, dataset.train_labels, epochs=2, batch_size=32)
    trained = TrainedModel(
        name="vgg13", dataset_name=dataset.name, model=model, float_accuracy=0.0
    )
    return trained, dataset


def _evals_to_front(result) -> int:
    """Evaluations spent until the last surviving front point was scored."""
    front = set(result.front.points())
    last = 0
    for index, point in enumerate(result.points):
        if point in front:
            last = index + 1
    return last


def run_strategy(trained, dataset, strategy, budget=None, rng_seed=0) -> dict:
    start = time.perf_counter()
    result = run_campaign(
        trained,
        dataset,
        strategy=strategy,
        max_loss=MAX_LOSS,
        budget_evals=budget,
        calibration_images=64,
        rng=np.random.default_rng(rng_seed),
        array_size=64,
    )
    wall = time.perf_counter() - start
    best = result.best()
    return {
        "strategy": result.strategy,
        "evaluations": result.stats["evaluations"],
        "evals_to_front": _evals_to_front(result),
        "front_size": result.stats["front_size"],
        "space_size": result.stats["space_size"],
        "wall_clock_s": wall,
        "baseline_accuracy": result.baseline_accuracy,
        "accurate_energy_nj": result.accurate_energy_nj,
        "best_energy_nj": None if best is None else best.energy_nj,
        "best_loss_percent": None if best is None else best.accuracy_loss,
        "energy_reduction_percent": result.energy_reduction_percent(),
    }


def _render(metrics: list[dict]) -> str:
    lines = [
        "DSE search: evaluations-to-front and wall-clock per strategy",
        f"(per-layer perforation space of {metrics[0]['space_size']} assignments,"
        f" loss budget {MAX_LOSS}%)",
        "",
    ]
    for m in metrics:
        reduction = m["energy_reduction_percent"]
        lines += [
            f"{m['strategy']}:",
            f"  evaluations        {m['evaluations']:6d}"
            f"  (front saturated after {m['evals_to_front']})",
            f"  front size         {m['front_size']:6d}",
            f"  wall clock         {m['wall_clock_s']:8.2f} s",
            f"  best feasible      "
            + (
                "none"
                if m["best_energy_nj"] is None
                else f"{m['best_energy_nj']:.1f} nJ "
                f"(loss {m['best_loss_percent']:+.2f}%, "
                f"{reduction:.1f}% below accurate)"
            ),
            "",
        ]
    return "\n".join(lines)


PARALLEL_WORKERS = (1, 4)


def run_parallel_campaigns(trained, dataset, workers_list=PARALLEL_WORKERS) -> dict:
    """One greedy campaign per worker count; fronts must be identical.

    ``speedup_vs_serial`` is serial wall-clock over this run's wall-clock —
    except when the worker request *degraded to the serial path* (clamped
    to 1 effective worker): then both runs execute literally the same
    in-process code and the speedup is 1.0 by construction, so 1.0 is what
    the ledger records (the measured ratio of two identical runs is pure
    timing noise).  The raw wall-clocks stay in ``workers_vs_wallclock``.
    """
    from repro.runtime.sizing import effective_cpu_count

    runs: dict[int, dict] = {}
    fronts = {}
    for workers in workers_list:
        start = time.perf_counter()
        result = run_campaign(
            trained,
            dataset,
            strategy="greedy",
            max_loss=MAX_LOSS,
            budget_evals=60,
            calibration_images=64,
            array_size=64,
            workers=workers,
        )
        wall = time.perf_counter() - start
        fronts[workers] = result.front.points()
        runs[workers] = {
            "wall_clock_s": wall,
            "evaluations": result.stats["evaluations"],
            "front_size": result.stats["front_size"],
            "effective_workers": result.stats["workers"],
        }
    baseline = fronts[workers_list[0]]
    identical = all(front == baseline for front in fronts.values())
    serial_wall = runs[workers_list[0]]["wall_clock_s"]
    serial_effective = runs[workers_list[0]]["effective_workers"]
    speedup = {}
    for workers, run in runs.items():
        if run["effective_workers"] == serial_effective:
            # Degraded (or serial) run: same code path as the serial
            # reference — unit speedup by construction, noise aside.
            speedup[str(workers)] = 1.0
        else:
            speedup[str(workers)] = serial_wall / run["wall_clock_s"]
    return {
        "workers_vs_wallclock": {str(w): r["wall_clock_s"] for w, r in runs.items()},
        "effective_workers": {
            str(w): r["effective_workers"] for w, r in runs.items()
        },
        "speedup_vs_serial": speedup,
        "front_identical_across_workers": identical,
        "front_size": runs[workers_list[0]]["front_size"],
        "evaluations": runs[workers_list[0]]["evaluations"],
        "cpu_count": os.cpu_count(),
        "affinity_cpus": effective_cpu_count(),
    }


def test_dse_parallel_campaign_benchmark(results_dir):
    """run_campaign(workers=N) fans candidate batches across the evaluation
    service and lands on the identical Pareto front; workers-vs-wallclock
    goes into the JSON ledger."""
    trained, dataset = _setup()
    metrics = run_parallel_campaigns(trained, dataset)
    json_path = update_json_result(results_dir, "dse_parallel_campaign", metrics)
    lines = [
        "DSE parallel campaign: workers vs wall-clock (greedy, 60-eval budget)",
        f"(host cpu_count={metrics['cpu_count']}, "
        f"schedulable={metrics['affinity_cpus']})",
        "",
    ]
    for workers, wall in metrics["workers_vs_wallclock"].items():
        speedup = metrics["speedup_vs_serial"][workers]
        effective = metrics["effective_workers"][workers]
        lines.append(
            f"  workers={workers} (effective {effective}):  {wall:8.2f} s  "
            f"({speedup:.2f}x vs serial)"
        )
    from repro.provenance import dataset_digest, model_digest

    manifest_path = record_bench(
        "dse_parallel_campaign",
        inputs={
            "model_digest": model_digest(trained.model),
            "dataset_digest": dataset_digest(dataset),
            "workers_list": list(PARALLEL_WORKERS),
            "budget_evals": 60,
        },
        outputs=metrics,
    )
    rendered = "\n".join(lines)
    print("\n" + rendered)
    print(f"[workers-vs-wallclock written to {json_path}; manifest {manifest_path}]")
    # The acceptance bar: identical front regardless of worker count, and
    # parallel never loses to serial (degrading to the serial path when
    # workers exceed schedulable CPUs counts as 1.0x; 10 % noise margin
    # matches the regression gate's SPEEDUP_NOISE_TOLERANCE).
    assert metrics["front_identical_across_workers"]
    assert metrics["front_size"] > 0
    for workers, speedup in metrics["speedup_vs_serial"].items():
        assert speedup >= 0.9, (
            f"workers={workers} ran at {speedup:.2f}x serial — the scheduler "
            f"must degrade to serial rather than lose to it"
        )


def test_dse_search_benchmark(results_dir):
    """Both strategies find a feasible sub-accurate-energy point within a
    vanishing fraction of the space; metrics land in the JSON ledger."""
    trained, dataset = _setup()
    greedy = run_strategy(trained, dataset, "greedy")
    nsga2 = run_strategy(
        trained,
        dataset,
        get_strategy("nsga2", population=12, generations=4),
        budget=NSGA_BUDGET,
        rng_seed=11,
    )
    metrics = [greedy, nsga2]
    rendered = _render(metrics)
    path = write_result(results_dir, "dse_search.txt", rendered)
    json_path = update_json_result(
        results_dir,
        "dse_search",
        {m["strategy"]: {k: v for k, v in m.items() if k != "strategy"} for m in metrics},
    )
    from repro.provenance import dataset_digest, model_digest

    manifest_path = record_bench(
        "dse_search",
        inputs={
            "model_digest": model_digest(trained.model),
            "dataset_digest": dataset_digest(dataset),
            "max_loss": MAX_LOSS,
            "nsga_budget": NSGA_BUDGET,
        },
        outputs={
            m["strategy"]: {k: v for k, v in m.items() if k != "strategy"}
            for m in metrics
        },
    )
    print("\n" + rendered)
    print(f"[written to {path} and {json_path}; manifest {manifest_path}]")

    for m in metrics:
        # The explorer must touch only a vanishing fraction of the space...
        assert m["evaluations"] < m["space_size"] / 1000
        # ... and return a budget-feasible point cheaper than all-accurate.
        assert m["best_energy_nj"] is not None
        assert m["best_loss_percent"] <= MAX_LOSS
        assert m["best_energy_nj"] < m["accurate_energy_nj"]
    assert nsga2["evaluations"] <= NSGA_BUDGET


if __name__ == "__main__":
    trained_main, dataset_main = _setup()
    results = [
        run_strategy(trained_main, dataset_main, "greedy"),
        run_strategy(
            trained_main,
            dataset_main,
            get_strategy("nsga2", population=12, generations=4),
            budget=NSGA_BUDGET,
            rng_seed=11,
        ),
    ]
    print(_render(results))
