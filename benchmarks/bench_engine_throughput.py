"""Engine throughput — compiled product kernels vs. the legacy per-batch paths.

Three measurements back the compiled-engine acceptance criteria:

* **LUT kernel throughput** on a ResNet-shaped conv layer (3x3x64 taps, 64
  filters, 4096 patches): the compiled ``lut = exact - error`` decomposition
  must be at least 5x faster than the legacy 3-D gather of
  :func:`repro.core.approx_conv.lut_product_sums`, with bit-exact outputs.
* **Per-backend throughput** on the same layer: every *available* engine
  backend (numpy, numba, lowmem, ...) compiles the accurate, perforated+V
  and LUT product models and reports patches/s; unavailable backends are
  listed with their reason *and* the precise import failure (exception
  type + message from a fresh probe), so a results file claiming
  ``"available": false`` is self-describing.  All backend outputs are
  asserted bit-exact against the legacy reference; the numpy backend must
  meet the legacy speedup floor above.  Backends advertising the
  ``fused_multi_plan`` capability additionally run one batched
  ``compile_multi`` launch over a mixed plan stack and report fused
  plan-patches/s next to the per-plan loop, bit-exact against it.
* **End-to-end sweep wall-clock** on the Table III configuration (accurate
  baseline plus m = 1..3 with and without the control variate): the
  compiled executor must be at least 2x faster than the legacy executor,
  again bit-exact.

Patches/sec figures are printed and written to ``results/`` so regressions
are visible across runs.  Run via pytest (``pytest -m engine
benchmarks/bench_engine_throughput.py``) or directly as a script.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import record_bench, update_json_result, write_result

from repro.core.approx_conv import (
    accurate_product_sums,
    lut_product_sums,
    perforated_product_sums,
)
from repro.core.backends import backend_names, get_backend
from repro.core.control_variate import ControlVariate
from repro.core.product_kernels import LUTKernel
from repro.multipliers.lut import LUTMultiplier
from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
from repro.models.zoo import build_model
from repro.nn.optimizers import SGD
from repro.nn.training import Trainer
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    PerforatedProduct,
)

pytestmark = pytest.mark.engine

# ResNet-shaped conv layer: 3x3 kernel over 64 channels, 64 filters.
PATCHES = 4096
TAPS = 3 * 3 * 64
FILTERS = 64

LUT_MIN_SPEEDUP = 5.0
SWEEP_MIN_SPEEDUP = 2.0


def _random_lut(rng: np.random.Generator) -> np.ndarray:
    """A structureless table — the worst case for the compiled decomposition."""
    exact = np.arange(256, dtype=np.int64)[:, None] * np.arange(256, dtype=np.int64)
    return exact + rng.integers(-500, 500, size=(256, 256))


def _best_of(fn, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def run_lut_throughput() -> dict:
    rng = np.random.default_rng(0)
    acts = rng.integers(0, 256, size=(PATCHES, TAPS), dtype=np.uint8)
    weights = rng.integers(0, 256, size=(TAPS, FILTERS), dtype=np.uint8)
    lut = _random_lut(rng)

    legacy_out = lut_product_sums(acts, weights, lut)
    legacy_time = _best_of(lambda: lut_product_sums(acts, weights, lut), repeats=2)

    compile_start = time.perf_counter()
    kernel = LUTKernel(weights, lut)
    compile_time = time.perf_counter() - compile_start
    compiled_out = kernel(acts)
    compiled_time = _best_of(lambda: kernel(acts))

    assert np.array_equal(compiled_out, legacy_out), "compiled LUT kernel not bit-exact"
    return {
        "legacy_time": legacy_time,
        "compiled_time": compiled_time,
        "compile_time": compile_time,
        "legacy_pps": PATCHES / legacy_time,
        "compiled_pps": PATCHES / compiled_time,
        "speedup": legacy_time / compiled_time,
    }


def run_backend_throughput() -> list[dict]:
    """Per-backend patches/s of the three compiled product models.

    Every available backend must be bit-exact against the legacy reference;
    unavailable backends are reported with their reason *and* a fresh
    import probe (exception type + message), not hidden.  Backends with the
    ``fused_multi_plan`` capability also time one batched ``compile_multi``
    launch over a mixed plan stack, bit-exact against the per-plan loop.
    """
    from repro.provenance.environment import PROBED_PACKAGES, probe_package

    rng = np.random.default_rng(0)
    acts = rng.integers(0, 256, size=(PATCHES, TAPS), dtype=np.uint8)
    weights = rng.integers(0, 256, size=(TAPS, FILTERS), dtype=np.uint8)
    lut = _random_lut(rng)
    cv = ControlVariate.from_weight_matrix(weights)

    from repro.simulation.inference import LUTProduct

    cases = [
        ("accurate", AccurateProduct(), accurate_product_sums(acts, weights)),
        (
            "perforated m=2 +V",
            PerforatedProduct(2, True),
            perforated_product_sums(acts, weights, 2, cv),
        ),
        (
            "lut (random table)",
            LUTProduct(LUTMultiplier(lut, name="bench")),
            lut_product_sums(acts, weights, lut),
        ),
    ]
    # A DSE-shaped plan stack for the fused launch: repeated techniques on
    # purpose, so kernel/E-matrix dedupe inside the fused path is exercised.
    multi_models = [
        AccurateProduct(),
        PerforatedProduct(1, True),
        PerforatedProduct(2, True),
        PerforatedProduct(2, False),
        LUTProduct(LUTMultiplier(lut, name="bench")),
        PerforatedProduct(2, True),
        LUTProduct(LUTMultiplier(lut, name="bench")),
        AccurateProduct(),
    ]
    rows: list[dict] = []
    for name in backend_names():
        backend = get_backend(name)
        available, reason = backend.availability()
        if not available:
            row = {"backend": name, "available": False, "reason": reason}
            if name in PROBED_PACKAGES:
                # The precise import failure, freshly probed — e.g.
                # "ModuleNotFoundError: No module named 'numba'".
                row["import_error"] = probe_package(name)["reason"]
            rows.append(row)
            continue
        row = {
            "backend": name,
            "available": True,
            "fused_multi_plan": bool(backend.fused_multi_plan),
            "cases": {},
        }
        for case_name, model, expected in cases:
            kernel = backend.compile(model, weights, cv)
            out = kernel(acts)  # warm-up + correctness in one
            assert np.array_equal(out, expected), (
                f"backend {name!r} not bit-exact on {case_name}"
            )
            elapsed = _best_of(lambda: kernel(acts))
            row["cases"][case_name] = PATCHES / elapsed
        if backend.fused_multi_plan:
            row["fused"] = _run_fused_backend_case(backend, multi_models, weights, cv, acts)
        rows.append(row)
    return rows


def _run_fused_backend_case(backend, models, weights, cv, acts) -> dict:
    """One shared-input ``compile_multi`` launch vs. the per-plan kernel loop."""
    plan_kernels = [backend.compile(model, weights, cv) for model in models]
    expected = np.concatenate([kernel(acts) for kernel in plan_kernels], axis=0)
    multi = backend.compile_multi(models, weights, cv)
    out = multi.product_sums_multi(acts, shared=True)  # warm-up + correctness
    assert np.array_equal(out, expected), (
        f"backend {backend.name!r} fused launch not bit-exact vs per-plan loop"
    )

    def per_plan():
        for kernel in plan_kernels:
            kernel(acts)

    fused_time = _best_of(lambda: multi.product_sums_multi(acts, shared=True))
    per_plan_time = _best_of(per_plan)
    plan_patches = len(models) * PATCHES
    return {
        "plans": len(models),
        "fused_pps": plan_patches / fused_time,
        "per_plan_pps": plan_patches / per_plan_time,
        "speedup": per_plan_time / fused_time,
    }


def _table3_setup():
    """A scaled Table III cell: one trained network, full plan set."""
    dataset = make_synthetic_cifar(
        SyntheticCifarConfig(
            num_classes=10, image_size=32, train_per_class=20, test_per_class=20, seed=3
        )
    )
    model = build_model("vgg13", num_classes=10, rng=np.random.default_rng(0))
    trainer = Trainer(model, SGD(learning_rate=0.05), rng=np.random.default_rng(1))
    trainer.fit(dataset.train_images, dataset.train_labels, epochs=1, batch_size=32)
    plans = [ExecutionPlan.uniform(AccurateProduct())] + [
        ExecutionPlan.uniform(PerforatedProduct(m, use_control_variate=cv))
        for m in (1, 2, 3)
        for cv in (True, False)
    ]
    return dataset, model, plans


def run_sweep_wallclock() -> dict:
    dataset, model, plans = _table3_setup()
    images = dataset.test_images
    calib = dataset.train_images[:64]
    compiled = ApproximateExecutor(model, calib, use_compiled=True)
    legacy = ApproximateExecutor(model, calib, use_compiled=False)
    for executor in (compiled, legacy):  # warm caches / kernels
        executor.predict(images[:16], plans[0])
    for plan in plans:
        np.testing.assert_array_equal(
            compiled.forward(images[:8], plan), legacy.forward(images[:8], plan)
        )

    def sweep(executor):
        def run():
            for plan in plans:
                executor.predict(images, plan)

        return run

    compiled_time = _best_of(sweep(compiled), repeats=2)
    legacy_time = _best_of(sweep(legacy), repeats=2)
    evals = len(plans) * images.shape[0]
    return {
        "legacy_time": legacy_time,
        "compiled_time": compiled_time,
        "legacy_ips": evals / legacy_time,
        "compiled_ips": evals / compiled_time,
        "speedup": legacy_time / compiled_time,
    }


def _render(lut: dict, backends: list[dict], sweep: dict) -> str:
    lines = [
        "engine throughput: legacy vs compiled product kernels",
        "",
        f"LUT product sums ({PATCHES} patches x {TAPS} taps x {FILTERS} filters):",
        f"  legacy    {lut['legacy_pps']:10.0f} patches/s  ({lut['legacy_time']:.3f} s)",
        f"  compiled  {lut['compiled_pps']:10.0f} patches/s  ({lut['compiled_time']:.3f} s"
        f" + {lut['compile_time']:.3f} s one-time compile)",
        f"  speedup   {lut['speedup']:.1f}x  (required >= {LUT_MIN_SPEEDUP:.0f}x)",
        "",
        "Per-backend throughput (patches/s, bit-exact vs legacy reference):",
    ]
    for row in backends:
        if not row["available"]:
            detail = row["reason"]
            if row.get("import_error"):
                detail = f"{detail}; probe: {row['import_error']}"
            lines.append(f"  {row['backend']:<8} unavailable ({detail})")
            continue
        cases = "  ".join(
            f"{case}: {pps:10.0f}" for case, pps in row["cases"].items()
        )
        lines.append(f"  {row['backend']:<8} {cases}")
        fused = row.get("fused")
        if fused:
            lines.append(
                f"  {'':<8} fused x{fused['plans']}: "
                f"{fused['fused_pps']:10.0f} plan-patches/s "
                f"(per-plan loop {fused['per_plan_pps']:10.0f}, "
                f"{fused['speedup']:.2f}x)"
            )
    lines += [
        "",
        "Table III sweep (vgg13, accurate + m=1..3 x {with, without} V):",
        f"  legacy    {sweep['legacy_ips']:10.1f} image-evals/s  ({sweep['legacy_time']:.2f} s)",
        f"  compiled  {sweep['compiled_ips']:10.1f} image-evals/s  ({sweep['compiled_time']:.2f} s)",
        f"  speedup   {sweep['speedup']:.1f}x  (required >= {SWEEP_MIN_SPEEDUP:.0f}x)",
    ]
    return "\n".join(lines)


def test_engine_throughput(results_dir):
    """Compiled kernels beat the legacy paths by the required margins, and
    every available backend reports bit-exact per-backend throughput."""
    lut = run_lut_throughput()
    backends = run_backend_throughput()
    sweep = run_sweep_wallclock()
    rendered = _render(lut, backends, sweep)
    path = write_result(results_dir, "engine_throughput.txt", rendered)
    json_path = update_json_result(
        results_dir,
        "engine_throughput",
        {
            "workload": {"patches": PATCHES, "taps": TAPS, "filters": FILTERS},
            "lut": lut,
            "backends": backends,
            "sweep_compiled_vs_legacy": sweep,
        },
    )
    manifest_path = record_bench(
        "engine_throughput",
        inputs={
            "workload": {"patches": PATCHES, "taps": TAPS, "filters": FILTERS},
            "min_speedups": {"lut": LUT_MIN_SPEEDUP, "sweep": SWEEP_MIN_SPEEDUP},
        },
        outputs={
            "lut": lut,
            "backends": backends,
            "sweep_compiled_vs_legacy": sweep,
        },
    )
    print("\n" + rendered)
    print(f"\n[written to {path} and {json_path}; manifest {manifest_path}]")
    assert lut["speedup"] >= LUT_MIN_SPEEDUP
    assert sweep["speedup"] >= SWEEP_MIN_SPEEDUP
    by_name = {row["backend"]: row for row in backends}
    assert by_name["numpy"]["available"], "numpy backend must always be available"
    # The numpy backend's LUT kernel is the same code path as the compiled
    # measurement above, so its floor is the legacy speedup requirement.
    numpy_lut_pps = by_name["numpy"]["cases"]["lut (random table)"]
    assert numpy_lut_pps >= LUT_MIN_SPEEDUP * lut["legacy_pps"]


if __name__ == "__main__":
    lut_result = run_lut_throughput()
    backend_rows = run_backend_throughput()
    sweep_result = run_sweep_wallclock()
    print(_render(lut_result, backend_rows, sweep_result))
