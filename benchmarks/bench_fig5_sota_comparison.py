"""Fig. 5 — energy reduction and accuracy loss versus the state of the art.

Regenerates the Fig. 5 comparison on a 64x64 MAC array: our control-variate
approximation at m = 2 against the three retraining-free baselines —
weight-oriented approximation [6], ALWANN (uniform variant) [7] and
layer-wise runtime-reconfigurable multipliers [8] — all built on the shared
synthetic multiplier library.  For every technique the bench reports the
average energy reduction (energy = cycles x power x delay, cycles from the
weight-stationary scheduling model) and the average accuracy loss versus the
accurate design.

Expected shape (per the paper): every technique keeps a comparable, small
accuracy loss, but ours achieves by far the largest energy reduction, with
the weight-oriented approach [6] ahead of ALWANN [7], ahead of the
reconfigurable approach [8].

By default the comparison runs on a representative subset of the network
suite (the ALWANN library search through the LUT execution path is expensive
in pure numpy); set ``REPRO_BENCH_FULL=1`` to sweep all six networks on both
datasets, as the paper does.
"""

from __future__ import annotations

from conftest import bench_epochs, full_scale, record_bench, write_result

from repro.accelerator.energy import network_energy
from repro.accelerator.scheduling import layer_shapes_of_model
from repro.analysis.reporting import Table
from repro.baselines.alwann import AlwannBaseline
from repro.baselines.ours import ControlVariateTechnique
from repro.baselines.reconfigurable import ReconfigurableBaseline
from repro.baselines.weight_oriented import WeightOrientedBaseline
from repro.core.accelerator_model import AcceleratorConfig
from repro.hardware.area_power import array_cost
from repro.models.zoo import MODEL_NAMES
from repro.multipliers.library import MultiplierLibrary
from repro.simulation.campaign import (
    TrainedModelCache,
    TrainingSettings,
    experiment_dataset,
)
from repro.simulation.inference import ApproximateExecutor

ARRAY_SIZE = 64
OURS_M = 2
ACCURACY_BUDGET = 0.02


def _workloads():
    """(network, dataset) pairs evaluated by the comparison."""
    if full_scale():
        return [(name, classes) for classes in (10, 100) for name in MODEL_NAMES]
    return [("vgg13", 10), ("shufflenet", 10), ("resnet44", 10)]


def _techniques(library):
    return [
        ControlVariateTechnique(m=OURS_M, array_size=ARRAY_SIZE),
        WeightOrientedBaseline(array_size=ARRAY_SIZE, max_accuracy_drop=ACCURACY_BUDGET),
        AlwannBaseline(library, array_size=ARRAY_SIZE, max_accuracy_drop=ACCURACY_BUDGET),
        ReconfigurableBaseline(array_size=ARRAY_SIZE, max_accuracy_drop=ACCURACY_BUDGET),
    ]


def _run_comparison():
    library = MultiplierLibrary.synthetic_evoapprox()
    cache = TrainedModelCache()
    settings = TrainingSettings(epochs=bench_epochs())
    accurate_config = AcceleratorConfig.accurate(ARRAY_SIZE)
    accurate_power = array_cost(accurate_config).power_mw

    per_technique: dict[str, dict[str, list[float]]] = {}
    for model_name, num_classes in _workloads():
        dataset = experiment_dataset(num_classes=num_classes)
        trained = cache.load_or_train(model_name, dataset, settings)
        executor = ApproximateExecutor(trained.model, dataset.train_images[:128])
        shapes = layer_shapes_of_model(trained.model, dataset.image_shape)
        # The techniques' accuracy budgets are enforced on the same evaluation
        # set they are reported on, mirroring how the paper reports each
        # method at its chosen operating point.
        eval_images = dataset.test_images[:160]
        eval_labels = dataset.test_labels[:160]
        calib_images, calib_labels = eval_images, eval_labels
        accurate_energy = network_energy(shapes, accurate_config, accurate_power)

        for technique in _techniques(library):
            result = technique.apply(
                executor, eval_images, eval_labels, calib_images, calib_labels
            )
            config = (
                AcceleratorConfig.make(ARRAY_SIZE, OURS_M, use_control_variate=True)
                if result.extra_cycles_per_layer
                else accurate_config
            )
            energy = network_energy(shapes, config, result.array_power_mw)
            reduction = 100.0 * (
                1.0 - energy.total_energy_nj / accurate_energy.total_energy_nj
            )
            store = per_technique.setdefault(
                technique.name, {"energy_reduction": [], "accuracy_loss": []}
            )
            store["energy_reduction"].append(reduction)
            store["accuracy_loss"].append(result.accuracy_loss_percent)
    return per_technique


def _build_table(per_technique) -> Table:
    table = Table(
        title="Fig. 5: average energy reduction and accuracy loss vs the state of the art "
        f"(64x64 array, ours at m={OURS_M})",
        columns=["technique", "avg energy reduction %", "avg accuracy loss %", "networks"],
    )
    for name, data in per_technique.items():
        n = len(data["energy_reduction"])
        table.add_row(
            name,
            sum(data["energy_reduction"]) / n,
            sum(data["accuracy_loss"]) / n,
            n,
        )
    return table


def test_fig5_sota_comparison(benchmark, results_dir):
    """Regenerate the Fig. 5 comparison (ours vs [6], [7], [8])."""
    per_technique = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    table = _build_table(per_technique)
    rendered = table.render(float_format="{:.2f}")
    path = write_result(results_dir, "fig5_sota_comparison.txt", rendered)
    manifest_path = record_bench(
        "fig5_sota_comparison",
        inputs={
            "workloads": [list(pair) for pair in _workloads()],
            "array_size": ARRAY_SIZE,
            "ours_m": OURS_M,
            "accuracy_budget": ACCURACY_BUDGET,
            "epochs": bench_epochs(),
            "full_scale": full_scale(),
        },
        outputs={"per_technique": per_technique},
    )
    print("\n" + rendered)
    print(f"\n[written to {path}; manifest {manifest_path}]")

    reductions = {
        name: sum(d["energy_reduction"]) / len(d["energy_reduction"])
        for name, d in per_technique.items()
    }
    losses = {
        name: sum(d["accuracy_loss"]) / len(d["accuracy_loss"])
        for name, d in per_technique.items()
    }
    # The paper's headline ordering: ours saves the most energy by a wide margin.
    assert reductions["ours"] > reductions["weight_oriented"]
    assert reductions["ours"] > reductions["alwann"]
    assert reductions["ours"] > reductions["reconfigurable"]
    assert reductions["ours"] >= 2.0 * max(
        reductions["weight_oriented"], reductions["alwann"], reductions["reconfigurable"]
    )
    # All techniques keep comparable (small) accuracy losses.
    assert all(loss < 10.0 for loss in losses.values())
