"""Ablation — choice of the control constant C and validity of the error model.

Not a figure of the paper, but the ablation DESIGN.md calls out: eq. (11)
claims the per-filter weight mean is the variance-optimal control constant.
This bench compares, by Monte-Carlo simulation on trained-filter-like weight
distributions, four choices of C (0, the global layer mean, the per-filter
median and the per-filter mean) and verifies the closed-form variance
prediction of eq. (10) against the simulation.
"""

from __future__ import annotations

import numpy as np
from conftest import record_bench, write_result

from repro.analysis.reporting import Table
from repro.core.error_model import convolution_error_stats, simulate_convolution_error

PERFORATION = 2
TAPS = 288
FILTERS = 6


def _synthetic_filters(rng: np.random.Generator) -> np.ndarray:
    """Concentrated per-filter weight-code distributions (Fig. 1 style)."""
    centers = rng.uniform(90, 170, size=FILTERS)
    spreads = rng.uniform(10, 30, size=FILTERS)
    codes = rng.normal(centers, spreads, size=(TAPS, FILTERS))
    return np.clip(np.round(codes), 0, 255)


def _run_ablation():
    rng = np.random.default_rng(7)
    weights = _synthetic_filters(rng)
    layer_mean = float(weights.mean())
    choices = {
        "C = 0 (no correction)": lambda w: 0.0,
        "C = layer mean": lambda w: layer_mean,
        "C = filter median": lambda w: float(np.median(w)),
        "C = filter mean (paper)": lambda w: float(w.mean()),
    }
    rows = []
    for label, chooser in choices.items():
        measured, predicted = [], []
        for f in range(FILTERS):
            w = weights[:, f]
            c = chooser(w)
            errors = simulate_convolution_error(
                w, PERFORATION, n_trials=4000, control_constant=c, rng=rng
            )
            stats = convolution_error_stats(w, PERFORATION, control_constant=c)
            measured.append(errors.std())
            predicted.append(stats.std)
        rows.append((label, float(np.mean(measured)), float(np.mean(predicted))))
    return rows


def _build_table(rows) -> Table:
    table = Table(
        title=f"Ablation: choice of the control constant C (perforation m={PERFORATION})",
        columns=["control constant", "measured error std", "predicted error std (eq. 10)"],
    )
    for row in rows:
        table.add_row(*row)
    return table


def test_ablation_control_constant(benchmark, results_dir):
    """Verify that the per-filter mean is the best C and eq. (10) predicts the variance."""
    rows = benchmark(_run_ablation)
    table = _build_table(rows)
    rendered = table.render(float_format="{:.1f}")
    path = write_result(results_dir, "ablation_control_constant.txt", rendered)
    manifest_path = record_bench(
        "ablation_control_constant",
        inputs={"perforation": PERFORATION, "taps": TAPS, "filters": FILTERS},
        outputs={
            "rows": [
                {"label": label, "measured_std": measured, "predicted_std": predicted}
                for label, measured, predicted in rows
            ]
        },
    )
    print("\n" + rendered)
    print(f"\n[written to {path}; manifest {manifest_path}]")

    by_label = {label: (measured, predicted) for label, measured, predicted in rows}
    paper_choice = by_label["C = filter mean (paper)"][0]
    # The paper's choice minimizes the measured error spread.
    assert all(paper_choice <= measured + 1e-9 for measured, _ in by_label.values())
    # And the closed-form prediction tracks the simulation for every choice.
    for measured, predicted in by_label.values():
        assert measured == predicted or abs(measured - predicted) / max(predicted, 1e-9) < 0.15
