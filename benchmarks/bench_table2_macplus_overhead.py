"""Table II — area and power overhead of the MAC+ column.

Regenerates Table II: the percentage of the approximate array's total area
and total power occupied/consumed by the N MAC+ units, for m in {1, 2, 3} and
N in {16, 32, 48, 64}.  Paper reference: at most 1.49 % of the area and
1.87 % of the power (smallest array, most aggressive perforation), shrinking
as the array grows.
"""

from __future__ import annotations

from conftest import record_bench, write_result

from repro.analysis.reporting import Table
from repro.core.accelerator_model import AcceleratorConfig
from repro.hardware.area_power import macplus_area_share, macplus_power_share

ARRAY_SIZES = (16, 32, 48, 64)
PERFORATIONS = (1, 2, 3)


def _build_table() -> Table:
    table = Table(
        title="Table II: area and power overhead of the MAC+ column (% of the whole array)",
        columns=["m", "N", "area share %", "power share %"],
    )
    for m in PERFORATIONS:
        for n in ARRAY_SIZES:
            config = AcceleratorConfig.make(n, m, use_control_variate=True)
            table.add_row(
                m, n, 100 * macplus_area_share(config), 100 * macplus_power_share(config)
            )
    return table


def test_table2_macplus_overhead(benchmark, results_dir):
    """Regenerate Table II and benchmark the overhead model."""
    table = benchmark(_build_table)
    rendered = table.render(float_format="{:.2f}")
    path = write_result(results_dir, "table2_macplus_overhead.txt", rendered)
    manifest_path = record_bench(
        "table2_macplus_overhead",
        inputs={"array_sizes": list(ARRAY_SIZES), "perforations": list(PERFORATIONS)},
        outputs={
            f"m={row[0]}/N={row[1]}": {
                "area_share_percent": row[2],
                "power_share_percent": row[3],
            }
            for row in table.rows
        },
    )
    print("\n" + rendered)
    print(f"\n[written to {path}; manifest {manifest_path}]")

    by_key = {(row[0], row[1]): row for row in table.rows}
    for m in PERFORATIONS:
        # Overhead shrinks monotonically with the array size (O(N) vs O(N^2)).
        area_shares = [by_key[(m, n)][2] for n in ARRAY_SIZES]
        power_shares = [by_key[(m, n)][3] for n in ARRAY_SIZES]
        assert area_shares == sorted(area_shares, reverse=True)
        assert power_shares == sorted(power_shares, reverse=True)
    # Worst case stays small (paper: 1.49 % area, 1.87 % power at N=16, m=3).
    assert by_key[(3, 16)][2] < 2.5
    assert by_key[(3, 16)][3] < 2.5
