"""Table I — theoretical full-adder reduction of the approximate MAC array.

Regenerates every cell of Table I (m = 1, 2; N = 16..64): the full-adder
decrease contributed by the MAC* units, the increase contributed by the MAC+
column, and the net decrease.  The reproduction is exact (see the unit tests
in ``tests/test_hardware.py`` for the cell-by-cell assertions against the
paper's numbers).
"""

from __future__ import annotations

from conftest import record_bench, write_result

from repro.analysis.reporting import Table
from repro.hardware.full_adders import table_i


def _build_table() -> Table:
    table = Table(
        title="Table I: theoretical evaluation of full adders (FA) reduction",
        columns=["m", "N", "FA decrease (MAC*)", "FA increase (MAC+)", "Total FA decrease"],
    )
    for row in table_i():
        table.add_row(
            row.m,
            row.array_size,
            int(row.mac_star_decrease),
            int(row.mac_plus_increase),
            int(row.total_decrease),
        )
    return table


def test_table1_full_adders(benchmark, results_dir):
    """Regenerate Table I and benchmark the closed-form model."""
    table = benchmark(_build_table)
    rendered = table.render()
    path = write_result(results_dir, "table1_full_adders.txt", rendered)
    manifest_path = record_bench(
        "table1_full_adders",
        outputs={
            f"m={row[0]}/N={row[1]}": {
                "mac_star_decrease": row[2],
                "mac_plus_increase": row[3],
                "total_decrease": row[4],
            }
            for row in table.rows
        },
    )
    print("\n" + rendered)
    print(f"\n[written to {path}; manifest {manifest_path}]")
    # Spot-check the headline cells against the paper.
    rows = {(r[0], r[1]): r for r in table.rows}
    assert rows[(1, 64)][4] == 10272
    assert rows[(2, 64)][4] == 38048
