"""Fig. 4 — normalized power and area of the approximate MAC array.

Regenerates the two series of Fig. 4: for every array size N in {16, 32, 48,
64} and perforation value m in {1, 2, 3}, the power (a) and area (b) of the
control-variate array normalized to the accurate array of the same size.

Paper reference points: power reduction 22.8-24.2 % (m=1), 34.5-35.7 % (m=2),
54.1-54.8 % (m=3); area roughly unchanged at m=1 and up to 29 % smaller at
m=3; both nearly independent of N.
"""

from __future__ import annotations

from conftest import record_bench, write_result

from repro.analysis.reporting import Table
from repro.core.accelerator_model import AcceleratorConfig
from repro.hardware.area_power import normalized_array_area, normalized_array_power

ARRAY_SIZES = (16, 32, 48, 64)
PERFORATIONS = (1, 2, 3)


def _build_table() -> Table:
    table = Table(
        title="Fig. 4: normalized power (a) and area (b) of the approximate MAC array",
        columns=["m", "N", "norm. power", "power reduction %", "norm. area", "area reduction %"],
    )
    for m in PERFORATIONS:
        for n in ARRAY_SIZES:
            config = AcceleratorConfig.make(n, m, use_control_variate=True)
            power = normalized_array_power(config)
            area = normalized_array_area(config)
            table.add_row(m, n, power, 100 * (1 - power), area, 100 * (1 - area))
    return table


def test_fig4_area_power(benchmark, results_dir):
    """Regenerate the Fig. 4 series and benchmark the area/power model."""
    table = benchmark(_build_table)
    rendered = table.render(float_format="{:.3f}")
    path = write_result(results_dir, "fig4_area_power.txt", rendered)
    manifest_path = record_bench(
        "fig4_area_power",
        inputs={"array_sizes": list(ARRAY_SIZES), "perforations": list(PERFORATIONS)},
        outputs={
            f"m={row[0]}/N={row[1]}": {
                "normalized_power": row[2],
                "power_reduction_percent": row[3],
                "normalized_area": row[4],
                "area_reduction_percent": row[5],
            }
            for row in table.rows
        },
    )
    print("\n" + rendered)
    print(f"\n[written to {path}; manifest {manifest_path}]")

    by_key = {(row[0], row[1]): row for row in table.rows}
    # Shape checks mirroring the paper's observations.
    for n in ARRAY_SIZES:
        assert by_key[(1, n)][2] > by_key[(2, n)][2] > by_key[(3, n)][2]
        assert by_key[(1, n)][4] > by_key[(3, n)][4]
    # Power reduction is set by m, nearly independent of N.
    for m in PERFORATIONS:
        powers = [by_key[(m, n)][2] for n in ARRAY_SIZES]
        assert max(powers) - min(powers) < 0.02
