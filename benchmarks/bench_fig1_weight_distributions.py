"""Fig. 1 — weight distributions of randomly selected filters.

Regenerates the data behind Fig. 1: for randomly selected filters of trained
networks, the PDF of the 8-bit quantized weight values.  The paper's point is
qualitative — trained filters have tightly concentrated weight distributions,
which is what makes the control variate (whose corrected variance is
proportional to ``sum_j (W_j - E[W])^2``) effective.  The bench reports, for
each sampled filter, the histogram summary and the implied variance-reduction
factor at m = 2.
"""

from __future__ import annotations

import numpy as np
from conftest import bench_epochs, record_bench, write_result

from repro.analysis.reporting import Table
from repro.analysis.statistics import model_weight_distributions
from repro.core.error_model import variance_reduction_factor
from repro.simulation.campaign import TrainedModelCache, TrainingSettings, experiment_dataset

#: Networks sampled for the four panels of Fig. 1 (the paper randomly picks
#: ResNet-56, ResNet-44, VGG-13 and ShuffleNet filters).
FIG1_MODELS = ("resnet56", "resnet44", "vgg13", "shufflenet")


def _build_table() -> Table:
    dataset = experiment_dataset(num_classes=10)
    cache = TrainedModelCache()
    settings = TrainingSettings(epochs=bench_epochs())
    table = Table(
        title="Fig. 1: quantized weight distributions of randomly selected filters",
        columns=[
            "network",
            "layer",
            "filter",
            "mean code",
            "std code",
            "within 1 std %",
            "var. reduction (m=2)",
        ],
    )
    rng = np.random.default_rng(1)
    for name in FIG1_MODELS:
        trained = cache.load_or_train(name, dataset, settings)
        for dist in model_weight_distributions(trained.model, n_filters=1, rng=rng):
            factor = variance_reduction_factor(dist.codes, 2)
            table.add_row(
                name,
                dist.layer,
                dist.filter_index,
                dist.mean,
                dist.std,
                100 * dist.concentration,
                factor if np.isfinite(factor) else float("inf"),
            )
    return table


def test_fig1_weight_distributions(benchmark, results_dir):
    """Regenerate the Fig. 1 filter statistics (trains/loads four networks)."""
    table = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    rendered = table.render(float_format="{:.1f}")
    path = write_result(results_dir, "fig1_weight_distributions.txt", rendered)
    manifest_path = record_bench(
        "fig1_weight_distributions",
        inputs={"models": list(FIG1_MODELS), "epochs": bench_epochs()},
        outputs={
            "filters": [
                {
                    "network": row[0],
                    "layer": row[1],
                    "filter": row[2],
                    "mean_code": row[3],
                    "std_code": row[4],
                    "within_1_std_percent": row[5],
                    "variance_reduction_m2": row[6],
                }
                for row in table.rows
            ]
        },
    )
    print("\n" + rendered)
    print(f"\n[written to {path}; manifest {manifest_path}]")

    # Concentrated distributions: the majority of weights within one std of the
    # mean and a variance-reduction factor comfortably above 1 for every panel.
    for row in table.rows:
        assert row[5] > 50.0
        assert row[6] > 1.0
