"""Setuptools shim.

The environment ships setuptools 65 without the ``wheel`` package, so PEP 517
editable installs (which require ``bdist_wheel``) fail.  Providing a classic
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``develop``-style editable install, which only needs setuptools.
"""

from setuptools import setup

setup()
