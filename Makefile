# CI-style entry points.  `make check` is the gate a PR must pass: the
# tier-1 suite, the engine parity/throughput suite, the DSE search suite +
# benchmark, the DSE CLI smoke, and the provenance regression gate
# (verify-results), which replays the deterministic golden workload and
# compares the freshly merged results/BENCH_engine.json against the
# checked-in baselines under results/golden/.  The perf-tracking benches
# merge their metrics into results/BENCH_engine.json so the perf trajectory
# is diffable across PRs.  Any unregistered-marker warning is promoted to an
# error (markers are registered once, in pyproject.toml).
#
# Intentional baseline changes: run `make bench-refresh` to rewrite
# results/golden/ from the current tree, review the diff, and commit it.
# `SKIP_REGRESSION=1 make check` skips only the verify-results gate.

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest -W error::pytest.PytestUnknownMarkWarning

.PHONY: check tier1 engine dse dse-smoke runtime-smoke scheduler-unit serve-smoke gateway-smoke verify-results bench-refresh

# verify-results runs LAST so it judges the bench ledger the engine/dse/
# serve targets just rewrote, not a stale one.
check: tier1 engine dse runtime-smoke dse-smoke serve-smoke gateway-smoke verify-results

tier1:
	$(PYTEST) -x -q

engine:
	$(PYTEST) -q -m engine tests benchmarks/bench_engine_throughput.py benchmarks/bench_sweep_prefix.py

# DSE search suite plus its evaluations-to-front benchmark.
dse:
	$(PYTEST) -q -m dse tests benchmarks/bench_dse_search.py

# Scheduler unit subset: model-free tests of the cost model, the balanced
# and cost-balanced chunking contracts and the pool-sizing policy — runs in
# about a second, the first thing to reach for when touching the scheduler.
scheduler-unit:
	$(PYTEST) -q tests/test_runtime_scheduling.py

# Evaluation-runtime suite: scheduler units plus EvaluationService lifecycle
# and graceful shutdown, service-vs-serial bit-exact parity, work stealing,
# parallel DSE campaigns.
runtime-smoke: scheduler-unit
	$(PYTEST) -q -m runtime tests

# End-to-end greedy exploration on the synthetic workload (< 60 s; trains a
# 1-epoch reference model on the first run).  Hermetic: the model cache and
# the campaign ledger live under a repo-local scratch directory, not the
# user's global cache.
DSE_SMOKE_DIR ?= .dse-smoke
dse-smoke:
	PYTHONPATH=src $(PYTHON) -m repro dse --strategy greedy --classes 10 \
	  --epochs 1 --max-loss 0.5 --budget-evals 60 --max-eval-images 64 \
	  --seed 0 --cache-dir $(DSE_SMOKE_DIR) --ledger $(DSE_SMOKE_DIR)/ledger

# HTTP job-daemon suite + end-to-end serve smoke.  The pytest leg runs the
# endpoint-contract/served-parity/admission tests plus the serve-throughput
# bench (jobs/sec + cache-hit ratio merged into results/BENCH_engine.json);
# the script leg boots the real `repro serve --golden-workload` CLI on an
# ephemeral port, POSTs the golden sweep over HTTP, verifies it byte-exactly
# against results/golden/accuracy_table.json, asserts a duplicate submission
# is served from the result cache, and SIGTERMs into a clean shutdown with
# no leaked /dev/shm blocks.
serve-smoke:
	$(PYTEST) -q -m serve tests benchmarks/bench_serve_throughput.py
	PYTHONPATH=src $(PYTHON) scripts/serve_smoke.py

# Fleet suite + end-to-end gateway smoke.  The pytest leg covers the
# routing table, gateway endpoints/fan-out stats, shard failure/recovery
# and the HTTP client's GET-only retry policy; the script leg boots a real
# two-shard fleet through the CLI (one adopted `repro serve` daemon + one
# gateway-spawned golden shard with a persisted result cache), verifies a
# gateway-routed golden sweep byte-exactly, runs `repro sweep|table3
# --remote <gateway>`, kills a shard and demands a fast machine-readable
# 503, SIGTERMs into a clean shutdown (no /dev/shm leaks), then
# warm-restarts the golden shard and demands a 100% cache-hit sweep.
gateway-smoke:
	$(PYTEST) -q -m fleet tests
	PYTHONPATH=src $(PYTHON) scripts/gateway_smoke.py

# Provenance regression gate: replay the deterministic golden workload and
# compare fresh results against results/golden/.  Honors SKIP_REGRESSION=1
# (skip entirely) and REPRO_REGRESSION_TOL (throughput tolerance band).
verify-results:
	PYTHONPATH=src $(PYTHON) -m repro verify-results

# Re-baseline: rewrite results/golden/ from the current tree (golden
# workload payloads + a canonicalized copy of results/BENCH_engine.json).
# Review the diff before committing.
bench-refresh:
	PYTHONPATH=src $(PYTHON) -m repro verify-results --refresh
