# CI-style entry points.  `make check` is the gate a PR must pass: the
# tier-1 suite plus the engine parity/throughput suite (which doubles as a
# perf smoke run — both benches merge their metrics into
# results/BENCH_engine.json so the perf trajectory is diffable across PRs),
# with any unregistered-marker warning promoted to an error (markers are
# registered once, in pyproject.toml).

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest -W error::pytest.PytestUnknownMarkWarning

.PHONY: check tier1 engine

check: tier1 engine

tier1:
	$(PYTEST) -x -q

engine:
	$(PYTEST) -q -m engine tests benchmarks/bench_engine_throughput.py benchmarks/bench_sweep_prefix.py
