"""Tests of the MAC units, systolic array, scheduling and energy models."""

import numpy as np
import pytest

from repro.accelerator.energy import layer_energy, network_energy
from repro.accelerator.mac_unit import MacPlusUnit, MacStarUnit, MacUnit, adder_bits
from repro.accelerator.scheduling import (
    LayerShape,
    layer_cycles,
    layer_shapes_of_model,
    network_cycles,
    tile_count,
)
from repro.accelerator.systolic import SystolicArray
from repro.core.accelerator_model import AcceleratorConfig
from repro.core.approx_conv import perforated_product_sums
from repro.core.control_variate import ControlVariate
from repro.models.zoo import build_model


class TestMacUnits:
    def test_adder_bits_matches_paper(self):
        """Section IV: a 64x64 array needs a 22-bit accumulator."""
        assert adder_bits(64) == 22
        assert adder_bits(16) == 20

    def test_accurate_mac_step(self):
        mac = MacUnit(array_size=64)
        assert mac.step(10, 20, 5) == 205
        assert mac.accumulator_bits == 22

    def test_operand_range_checked(self):
        with pytest.raises(ValueError):
            MacUnit().step(256, 1, 0)
        with pytest.raises(ValueError):
            MacStarUnit(m=2).step(1, -1, 0, 0)

    def test_mac_star_step_eq13(self):
        unit = MacStarUnit(m=2, array_size=64)
        weight, activation = 100, 77  # 77 = 0b1001101, low bits = 0b01 = 1
        sum_out, sumx_out = unit.step(weight, activation, sum_in=0, sumx_in=0)
        assert sumx_out == 77 & 3
        assert sum_out == (100 * (77 - (77 & 3))) >> 2
        assert unit.accumulator_bits == 20
        assert unit.sumx_bits == 8

    def test_mac_star_validation(self):
        with pytest.raises(ValueError):
            MacStarUnit(m=0)

    def test_mac_plus_reconstruction_eq14_15(self):
        """Full column pipeline reproduces B + sum(W*A|approx) + C*sumX."""
        m, n = 2, 8
        rng = np.random.default_rng(0)
        weights = rng.integers(0, 256, size=n)
        acts = rng.integers(0, 256, size=n)
        bias = 173
        star = MacStarUnit(m=m, array_size=n)
        plus = MacPlusUnit(m=m, array_size=n)
        partial, sumx = bias >> m, 0
        for w, a in zip(weights, acts):
            partial, sumx = star.step(int(w), int(a), partial, sumx)
        control = 131
        result = plus.step(control, sumx, partial, bias_low=bias & ((1 << m) - 1))
        x = acts & ((1 << m) - 1)
        expected = bias + int((weights * (acts - x)).sum()) + control * int(x.sum())
        assert result == expected

    def test_mac_plus_properties(self):
        plus = MacPlusUnit(m=2, array_size=64)
        assert plus.multiplier_bits == (8, 8)
        assert plus.adder_bits == 22
        with pytest.raises(ValueError):
            plus.step(300, 0, 0)
        with pytest.raises(ValueError):
            plus.step(100, 0, 0, bias_low=4)
        with pytest.raises(ValueError):
            MacPlusUnit(m=0)


class TestSystolicArray:
    @pytest.fixture
    def workload(self, rng):
        acts = rng.integers(0, 256, size=(19, 70), dtype=np.int64)
        weights = rng.integers(0, 256, size=(70, 37), dtype=np.int64)
        bias = rng.integers(0, 1000, size=37, dtype=np.int64)
        return acts, weights, bias

    def test_accurate_array_matches_matmul(self, workload):
        acts, weights, bias = workload
        array = SystolicArray(AcceleratorConfig.accurate(16))
        out, tiles = array.matmul(acts, weights, bias)
        assert np.array_equal(out, acts @ weights + bias)
        assert len(tiles) == tile_count(LayerShape("x", 19, 70, 37), 16)

    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_approximate_array_matches_fast_path(self, workload, m):
        acts, weights, bias = workload
        cv = ControlVariate.from_weight_matrix(weights)
        array = SystolicArray(AcceleratorConfig.make(16, m, use_control_variate=True))
        out, _ = array.matmul(acts, weights, bias, control_constants=cv.constants)
        expected = perforated_product_sums(acts, weights, m, cv) + bias[None, :]
        assert np.array_equal(out, expected)

    def test_without_control_variate(self, workload):
        acts, weights, bias = workload
        array = SystolicArray(AcceleratorConfig.make(16, 2, use_control_variate=False))
        out, _ = array.matmul(acts, weights, bias)
        assert np.array_equal(
            out, perforated_product_sums(acts, weights, 2) + bias[None, :]
        )

    def test_missing_control_constants_rejected(self, workload):
        acts, weights, _ = workload
        array = SystolicArray(AcceleratorConfig.make(16, 2, use_control_variate=True))
        with pytest.raises(ValueError):
            array.matmul(acts, weights)

    def test_shape_validation(self, rng):
        array = SystolicArray(AcceleratorConfig.accurate(8))
        with pytest.raises(ValueError):
            array.matmul(np.zeros((3, 4)), np.zeros((5, 2)))
        with pytest.raises(ValueError):
            array.matmul(np.zeros((3, 4)), np.zeros((4, 2)), bias_codes=np.zeros(3))


class TestScheduling:
    def test_layer_shape_validation(self):
        with pytest.raises(ValueError):
            LayerShape("x", 0, 1, 1)

    def test_macs_count(self):
        shape = LayerShape("conv", patches=100, taps=9, filters=16, groups=2)
        assert shape.macs == 100 * 9 * 16 * 2

    def test_tile_count(self):
        shape = LayerShape("conv", patches=10, taps=100, filters=70)
        assert tile_count(shape, 64) == 2 * 2

    def test_layer_cycles_formula(self):
        shape = LayerShape("conv", patches=256, taps=64, filters=64)
        config = AcceleratorConfig.accurate(64)
        assert layer_cycles(shape, config) == (63 + 256 + 63)

    def test_mac_plus_adds_one_cycle_per_layer(self):
        shape = LayerShape("conv", patches=256, taps=64, filters=64)
        accurate = layer_cycles(shape, AcceleratorConfig.accurate(64))
        ours = layer_cycles(shape, AcceleratorConfig.make(64, 2, use_control_variate=True))
        without_v = layer_cycles(shape, AcceleratorConfig.make(64, 2, use_control_variate=False))
        assert ours == accurate + 1
        assert without_v == accurate

    def test_layer_shapes_of_model(self, rng):
        model = build_model("vgg13", num_classes=10, rng=rng)
        shapes = layer_shapes_of_model(model, (16, 16, 3), batch=1)
        mac_layers = model.conv_dense_nodes()
        assert len(shapes) == len(mac_layers)
        first = shapes[0]
        assert first.taps == 3 * 3 * 3
        assert first.patches == 16 * 16

    def test_network_cycles_accepts_graph(self, rng):
        model = build_model("vgg13", num_classes=10, rng=rng)
        config = AcceleratorConfig.accurate(32)
        by_graph = network_cycles(model, config, input_shape=(16, 16, 3))
        by_shapes = network_cycles(
            layer_shapes_of_model(model, (16, 16, 3)), config
        )
        assert by_graph == by_shapes > 0

    def test_larger_array_needs_fewer_cycles(self, rng):
        model = build_model("resnet44", num_classes=10, rng=rng)
        shapes = layer_shapes_of_model(model, (16, 16, 3))
        small = network_cycles(shapes, AcceleratorConfig.accurate(16))
        large = network_cycles(shapes, AcceleratorConfig.accurate(64))
        assert large < small


class TestEnergy:
    def test_layer_energy_formula(self):
        shape = LayerShape("conv", patches=100, taps=32, filters=32)
        config = AcceleratorConfig.accurate(32, clock_ns=2.0)
        cycles = layer_cycles(shape, config)
        assert layer_energy(shape, config, power_mw=10.0) == pytest.approx(
            cycles * 10.0 * 2.0 / 1e3
        )

    def test_negative_power_rejected(self):
        shape = LayerShape("conv", patches=10, taps=8, filters=8)
        with pytest.raises(ValueError):
            layer_energy(shape, AcceleratorConfig.accurate(8), power_mw=-1.0)
        with pytest.raises(ValueError):
            network_energy([shape], AcceleratorConfig.accurate(8), power_mw=-1.0)

    def test_network_energy_report(self):
        shapes = [
            LayerShape("a", patches=64, taps=27, filters=8),
            LayerShape("b", patches=64, taps=72, filters=16),
        ]
        config = AcceleratorConfig.make(16, 2, clock_ns=1.5)
        report = network_energy(shapes, config, power_mw=5.0)
        assert set(report.layer_cycles) == {"a", "b"}
        assert report.total_cycles == sum(report.layer_cycles.values())
        assert report.total_energy_nj == pytest.approx(
            report.total_cycles * 5.0 * 1.5 / 1e3
        )
        assert report.latency_us == pytest.approx(report.total_cycles * 1.5 / 1e3)

    def test_energy_reduction_of_approximate_array(self, rng):
        """Lower power at (almost) equal cycles => lower energy."""
        model = build_model("vgg13", num_classes=10, rng=rng)
        shapes = layer_shapes_of_model(model, (16, 16, 3))
        accurate = network_energy(shapes, AcceleratorConfig.accurate(64), power_mw=10.0)
        ours = network_energy(shapes, AcceleratorConfig.make(64, 2), power_mw=6.5)
        assert ours.total_energy_nj < accurate.total_energy_nj
