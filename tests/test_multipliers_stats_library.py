"""Tests of multiplier error statistics and the synthetic multiplier library."""

import numpy as np
import pytest

from repro.multipliers import (
    AccurateMultiplier,
    MultiplierLibrary,
    PerforatedMultiplier,
    TruncatedMultiplier,
    empirical_error_stats,
    perforation_error_stats,
)
from repro.multipliers.library import LibraryEntry, estimate_relative_cost


class TestEmpiricalErrorStats:
    def test_accurate_has_zero_error(self):
        stats = empirical_error_stats(AccurateMultiplier())
        assert stats.mean == 0
        assert stats.variance == 0
        assert stats.max_absolute == 0

    def test_perforated_mean_error_uniform_operands(self):
        """Over uniform operands E[eps] = E[W] * E[x] = 127.5 * (2^m - 1)/2."""
        m = 2
        stats = empirical_error_stats(PerforatedMultiplier(m))
        assert stats.mean == pytest.approx(127.5 * ((1 << m) - 1) / 2, rel=1e-6)

    def test_error_grows_with_m(self):
        stds = [empirical_error_stats(PerforatedMultiplier(m)).std for m in (1, 2, 3)]
        assert stds[0] < stds[1] < stds[2]

    def test_workload_aware_stats(self, rng):
        weights = rng.integers(100, 140, size=64)
        activations = rng.integers(0, 256, size=64)
        stats = empirical_error_stats(PerforatedMultiplier(1), weights, activations)
        assert 0 < stats.mean < 140  # small weights range -> bounded mean error

    def test_partial_arguments_rejected(self):
        with pytest.raises(ValueError):
            empirical_error_stats(PerforatedMultiplier(1), weights=np.arange(4))


class TestPerforationErrorStats:
    def test_matches_empirical_for_uniform_weights(self):
        weights = np.arange(256)
        analytical = perforation_error_stats(2, weights)
        empirical = empirical_error_stats(PerforatedMultiplier(2))
        assert analytical.mean == pytest.approx(empirical.mean, rel=1e-9)
        assert analytical.variance == pytest.approx(empirical.variance, rel=1e-9)

    def test_concentrated_weights_reduce_variance(self):
        spread = perforation_error_stats(2, np.array([10.0, 250.0] * 50))
        tight = perforation_error_stats(2, np.full(100, 130.0))
        assert tight.variance < spread.variance

    def test_mean_relative_matches_empirical_uniform_weights(self):
        """MRE is finite and agrees with the exhaustive empirical figure."""
        for m in (1, 2, 3):
            analytical = perforation_error_stats(m, np.arange(256))
            empirical = empirical_error_stats(PerforatedMultiplier(m))
            assert np.isfinite(analytical.mean_relative)
            assert analytical.mean_relative == pytest.approx(
                empirical.mean_relative, rel=1e-9
            )

    def test_mean_relative_matches_empirical_weight_distribution(self, rng):
        weights = rng.integers(5, 200, size=300)
        activations = np.arange(256)
        analytical = perforation_error_stats(2, weights)
        empirical = empirical_error_stats(PerforatedMultiplier(2), weights, activations)
        assert analytical.mean_relative == pytest.approx(empirical.mean_relative, rel=1e-9)
        assert analytical.mean_absolute == pytest.approx(empirical.mean_absolute, rel=1e-9)

    def test_mean_relative_zero_for_m0(self):
        stats = perforation_error_stats(0, np.arange(1, 100))
        assert stats.mean_relative == 0.0
        assert stats.mean_absolute == 0.0

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            perforation_error_stats(1, np.array([]))


class TestRelativeCost:
    def test_full_bits_is_unity(self):
        power, area, delay = estimate_relative_cost(64)
        assert power == pytest.approx(1.0)
        assert area == pytest.approx(1.0)
        assert delay == pytest.approx(1.0)

    def test_monotone_in_bits(self):
        costs = [estimate_relative_cost(bits)[0] for bits in (64, 48, 32, 16)]
        assert costs == sorted(costs, reverse=True)

    def test_clipped_to_valid_range(self):
        power, area, delay = estimate_relative_cost(0)
        assert 0 < power < 1
        assert 0 < area < 1
        assert 0 < delay <= 1


class TestMultiplierLibrary:
    @pytest.fixture(scope="class")
    def library(self):
        return MultiplierLibrary.synthetic_evoapprox(seed=3, n_evolved=4)

    def test_contains_accurate_and_perforated(self, library):
        assert "accurate" in library
        assert "perforated_m2" in library
        assert len(library) > 10

    def test_duplicate_rejected(self, library):
        entry = library["accurate"]
        with pytest.raises(ValueError):
            library.add(entry)

    def test_accurate_entry_lookup(self, library):
        assert library.accurate_entry().stats.max_absolute == 0

    def test_approximate_entries_exclude_accurate(self, library):
        names = [e.name for e in library.approximate_entries()]
        assert "accurate" not in names
        assert len(names) == len(library) - 1

    def test_sorted_by_power(self, library):
        powers = [e.relative_power for e in library.sorted_by_power()]
        assert powers == sorted(powers)

    def test_pareto_front_is_non_dominated(self, library):
        front = library.pareto_front()
        assert front
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    b.relative_power <= a.relative_power
                    and b.stats.std <= a.stats.std
                    and (b.relative_power < a.relative_power or b.stats.std < a.stats.std)
                )
                assert not dominates

    def test_cheapest_within_error(self, library):
        entry = library.cheapest_within_error(max_error_std=1e12)
        assert entry.relative_power == min(e.relative_power for e in library)
        with pytest.raises(LookupError):
            library.cheapest_within_error(max_error_std=-1.0)

    def test_perforated_entries_marked_reconfigurable(self, library):
        assert library["perforated_m1"].reconfigurable
        assert not library["truncated_w0a1"].reconfigurable

    def test_cost_ordering_follows_approximation(self, library):
        assert (
            library["perforated_m3"].relative_power
            < library["perforated_m1"].relative_power
            < library["accurate"].relative_power
        )

    def test_from_multipliers_characterizes_entries(self):
        lib = MultiplierLibrary.from_multipliers([AccurateMultiplier(), TruncatedMultiplier(0, 2)])
        assert len(lib) == 2
        entry = lib["truncated_w0a2"]
        assert isinstance(entry, LibraryEntry)
        assert entry.relative_power < 1.0
        assert entry.stats.max_absolute > 0

    def test_deterministic_generation(self):
        a = MultiplierLibrary.synthetic_evoapprox(seed=11, n_evolved=3)
        b = MultiplierLibrary.synthetic_evoapprox(seed=11, n_evolved=3)
        assert a.names == b.names
        assert all(
            np.array_equal(a[name].multiplier.build_lut(), b[name].multiplier.build_lut())
            for name in ("evolved_0", "evolved_2")
        )
