"""Tests of the graph container, losses, optimizers, training and serialization."""

import numpy as np
import pytest

from repro.nn.graph import Graph, INPUT, Sequential
from repro.nn.layers import Add, BatchNorm, Conv2D, Dense, Flatten, GlobalAvgPool, ReLU
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.optimizers import SGD, Adam
from repro.nn.serialization import load_params, save_params
from repro.nn.training import Trainer, evaluate_accuracy


def _small_graph(rng):
    graph = Graph()
    x = graph.add("conv", Conv2D(3, 4, 3, rng=rng), INPUT)
    x = graph.add("bn", BatchNorm(4), x)
    x = graph.add("relu", ReLU(), x)
    x = graph.add("gap", GlobalAvgPool(), x)
    graph.add("fc", Dense(4, 3, rng=rng), x)
    return graph


class TestGraphConstruction:
    def test_add_and_lookup(self, rng):
        graph = _small_graph(rng)
        assert "conv" in graph
        assert graph.node("conv").inputs == [INPUT]
        assert graph.output_name == "fc"

    def test_duplicate_name_rejected(self, rng):
        graph = Graph()
        graph.add("a", ReLU(), INPUT)
        with pytest.raises(ValueError):
            graph.add("a", ReLU(), INPUT)

    def test_unknown_input_rejected(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add("a", ReLU(), "missing")

    def test_input_arity_checked(self):
        graph = Graph()
        graph.add("a", ReLU(), INPUT)
        with pytest.raises(ValueError):
            graph.add("sum", Add(2), ["a"])

    def test_reserved_name_rejected(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add(INPUT, ReLU(), INPUT)

    def test_forward_on_empty_graph(self):
        with pytest.raises(RuntimeError):
            Graph().forward(np.zeros((1, 2)))


class TestGraphExecution:
    def test_forward_shapes(self, rng):
        graph = _small_graph(rng)
        out = graph.forward(rng.normal(size=(2, 8, 8, 3)))
        assert out.shape == (2, 3)

    def test_return_activations(self, rng):
        graph = _small_graph(rng)
        out, acts = graph.forward(rng.normal(size=(1, 8, 8, 3)), return_activations=True)
        assert set(acts) == {INPUT, "conv", "bn", "relu", "gap", "fc"}
        assert np.allclose(acts["fc"], out)

    def test_branching_graph_backward(self, rng):
        """Residual branches accumulate gradients at the shared parent."""
        graph = Graph()
        x = graph.add("conv1", Conv2D(2, 2, 3, rng=rng), INPUT)
        a = graph.add("relu_a", ReLU(), x)
        b = graph.add("relu_b", ReLU(), x)
        graph.add("sum", Add(2), [a, b])
        data = np.abs(rng.normal(size=(1, 4, 4, 2))) + 0.1
        out = graph.forward(data, training=True)
        graph.backward(np.ones_like(out))
        # Both branches pass the (positive) activations, so the conv weight
        # gradient equals twice the single-branch gradient.
        assert np.isfinite(graph.node("conv1").layer.dweight).all()
        assert np.abs(graph.node("conv1").layer.dweight).max() > 0

    def test_conv_dense_nodes_in_order(self, rng):
        graph = _small_graph(rng)
        names = [n.name for n in graph.conv_dense_nodes()]
        assert names == ["conv", "fc"]

    def test_count_parameters(self, rng):
        graph = _small_graph(rng)
        expected = (3 * 3 * 3 * 4 + 4) + (4 + 4) + (4 * 3 + 3)
        assert graph.count_parameters() == expected


class TestSequential:
    def test_auto_naming_and_chaining(self, rng):
        model = Sequential()
        model.append(Conv2D(3, 4, 3, rng=rng))
        model.append(ReLU())
        model.append(GlobalAvgPool())
        model.append(Dense(4, 2, rng=rng), name="head")
        out = model.forward(rng.normal(size=(2, 6, 6, 3)))
        assert out.shape == (2, 2)
        assert model.output_name == "head"


class TestLosses:
    def test_softmax_normalizes(self, rng):
        probs = softmax(rng.normal(size=(5, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs > 0).all()

    def test_softmax_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 4))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.allclose(grad, 0.0, atol=1e-6)

    def test_cross_entropy_uniform(self):
        logits = np.zeros((2, 4))
        loss, _ = softmax_cross_entropy(logits, np.array([0, 3]))
        assert loss == pytest.approx(np.log(4.0))

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(3, 5))
        labels = np.array([1, 4, 0])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                shifted = logits.copy()
                shifted[i, j] += eps
                plus, _ = softmax_cross_entropy(shifted, labels)
                shifted[i, j] -= 2 * eps
                minus, _ = softmax_cross_entropy(shifted, labels)
                numeric[i, j] = (plus - minus) / (2 * eps)
        assert np.allclose(grad, numeric, atol=1e-6)

    def test_label_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 3]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(3), np.array([0]))


class TestOptimizers:
    def _loss_after_steps(self, optimizer_cls, steps=30, **kwargs):
        rng = np.random.default_rng(0)
        graph = Graph()
        graph.add("fc", Dense(4, 2, rng=rng), INPUT)
        x = rng.normal(size=(16, 4))
        y = (x[:, 0] > 0).astype(int)
        optimizer = optimizer_cls(**kwargs)
        for _ in range(steps):
            logits = graph.forward(x, training=True)
            loss, grad = softmax_cross_entropy(logits, y)
            graph.backward(grad)
            optimizer.step(graph)
        final, _ = softmax_cross_entropy(graph.forward(x), y)
        return final

    def test_sgd_reduces_loss(self):
        assert self._loss_after_steps(SGD, learning_rate=0.5, weight_decay=0.0) < 0.3

    def test_adam_reduces_loss(self):
        assert self._loss_after_steps(Adam, learning_rate=0.05) < 0.3

    def test_sgd_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=-1.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.5)
        with pytest.raises(ValueError):
            SGD(weight_decay=-0.1)

    def test_weight_decay_shrinks_weights(self, rng):
        graph = Graph()
        graph.add("fc", Dense(3, 2, rng=rng), INPUT)
        layer = graph.node("fc").layer
        layer.dweight = np.zeros_like(layer.weight)
        layer.dbias = np.zeros_like(layer.bias)
        norm_before = np.linalg.norm(layer.weight)
        SGD(learning_rate=0.1, momentum=0.0, weight_decay=0.1).step(graph)
        assert np.linalg.norm(layer.weight) < norm_before


class TestTrainingAndSerialization:
    def test_trainer_learns_tiny_dataset(self, tiny_dataset, trained_tiny_model):
        accuracy = evaluate_accuracy(
            trained_tiny_model, tiny_dataset.test_images, tiny_dataset.test_labels
        )
        assert accuracy > 0.6  # well above the 25 % chance level

    def test_trainer_records_history(self, tiny_dataset, rng):
        from repro.models.zoo import build_model

        model = build_model("vgg13", num_classes=tiny_dataset.num_classes, base_width=8, rng=rng)
        trainer = Trainer(model, SGD(learning_rate=0.05), rng=rng)
        result = trainer.fit(
            tiny_dataset.train_images[:64],
            tiny_dataset.train_labels[:64],
            epochs=2,
            batch_size=32,
            validation=(tiny_dataset.test_images[:20], tiny_dataset.test_labels[:20]),
        )
        assert len(result.losses) == 2
        assert len(result.val_accuracies) == 2
        assert np.isfinite(result.final_val_accuracy)

    def test_label_shape_validated(self, tiny_dataset, rng):
        from repro.models.zoo import build_model

        model = build_model("vgg13", num_classes=4, base_width=8, rng=rng)
        trainer = Trainer(model)
        with pytest.raises(ValueError):
            trainer.fit(tiny_dataset.train_images[:8], np.zeros((4,)), epochs=1)

    def test_save_load_round_trip(self, trained_tiny_model, tiny_dataset, tmp_path, rng):
        from repro.models.zoo import build_model

        path = tmp_path / "params.npz"
        save_params(trained_tiny_model, path)
        clone = build_model(
            "vgg13", num_classes=tiny_dataset.num_classes, base_width=8, rng=rng
        )
        load_params(clone, path)
        x = tiny_dataset.test_images[:8]
        assert np.allclose(trained_tiny_model.forward(x), clone.forward(x))

    def test_load_missing_key_rejected(self, trained_tiny_model, tmp_path, rng):
        from repro.models.zoo import build_model

        state = trained_tiny_model.state_dict()
        state.pop(next(iter(state)))
        model = build_model("vgg13", num_classes=4, base_width=8, rng=rng)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_shape_mismatch_rejected(self, trained_tiny_model, rng):
        from repro.models.zoo import build_model

        state = trained_tiny_model.state_dict()
        key = next(k for k in state if k.endswith(".weight"))
        state[key] = np.zeros((1, 1))
        model = build_model("vgg13", num_classes=4, base_width=8, rng=rng)
        with pytest.raises(ValueError):
            model.load_state_dict(state)
