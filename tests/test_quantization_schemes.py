"""Tests of the affine uint8 quantization parameters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization.schemes import QMAX, QMIN, QuantParams, UINT8_LEVELS


class TestQuantParamsValidation:
    def test_positive_scale_required(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0, zero_point=0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            QuantParams(scale=-1.0, zero_point=0)

    def test_non_finite_scale_rejected(self):
        with pytest.raises(ValueError):
            QuantParams(scale=float("nan"), zero_point=0)

    def test_zero_point_range_checked(self):
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=256)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=-1)

    def test_levels_constant(self):
        assert UINT8_LEVELS == 256


class TestFromRange:
    def test_symmetric_range(self):
        params = QuantParams.from_range(-1.0, 1.0)
        assert params.scale == pytest.approx(2.0 / 255.0)
        assert QMIN <= params.zero_point <= QMAX

    def test_positive_only_range_includes_zero(self):
        params = QuantParams.from_range(0.5, 2.0)
        # The range is expanded to include zero, so zero_point is 0.
        assert params.zero_point == 0
        assert params.scale == pytest.approx(2.0 / 255.0)

    def test_negative_only_range_includes_zero(self):
        params = QuantParams.from_range(-3.0, -1.0)
        assert params.zero_point == QMAX

    def test_degenerate_range(self):
        params = QuantParams.from_range(0.0, 0.0)
        assert params.scale == 1.0
        assert params.zero_point == 0

    def test_zero_is_exactly_representable(self):
        params = QuantParams.from_range(-0.37, 1.23)
        code = params.quantize_value(0.0)
        assert params.dequantize_value(code) == pytest.approx(0.0, abs=1e-12)


class TestScalarRoundTrip:
    def test_round_trip_error_bounded_by_half_scale(self):
        params = QuantParams.from_range(-2.0, 2.0)
        for value in np.linspace(-2.0, 2.0, 41):
            code = params.quantize_value(float(value))
            assert abs(params.dequantize_value(code) - value) <= params.scale / 2 + 1e-12

    def test_clipping_out_of_range(self):
        params = QuantParams.from_range(-1.0, 1.0)
        assert params.quantize_value(100.0) == QMAX
        assert params.quantize_value(-100.0) == QMIN

    def test_range_property(self):
        params = QuantParams.from_range(-1.0, 3.0)
        lo, hi = params.range
        assert lo <= -1.0 + params.scale
        assert hi >= 3.0 - params.scale


class TestFromRangeProperties:
    @given(
        lo=st.floats(-1e3, 1e3, allow_nan=False),
        width=st.floats(1e-3, 1e3, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_zero_point_always_valid(self, lo, width):
        params = QuantParams.from_range(lo, lo + width)
        assert QMIN <= params.zero_point <= QMAX
        assert params.scale > 0

    @given(
        lo=st.floats(-1e3, 1e3, allow_nan=False),
        width=st.floats(1e-3, 1e3, allow_nan=False),
        value=st.floats(-1e3, 1e3, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_within_range_bounded(self, lo, width, value):
        hi = lo + width
        params = QuantParams.from_range(lo, hi)
        clipped = min(max(value, min(lo, 0.0)), max(hi, 0.0))
        code = params.quantize_value(clipped)
        assert abs(params.dequantize_value(code) - clipped) <= params.scale * 0.5 + 1e-9
