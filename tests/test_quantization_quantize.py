"""Tests of tensor quantization, dequantization and calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantization.quantize import (
    QuantizedTensor,
    calibrate_minmax,
    calibrate_percentile,
    dequantize,
    quantize,
    quantize_tensor,
)
from repro.quantization.schemes import QuantParams


class TestCalibration:
    def test_minmax_covers_tensor(self, rng):
        tensor = rng.normal(0, 1, size=(100,))
        params = calibrate_minmax(tensor)
        lo, hi = params.range
        assert lo <= tensor.min() + params.scale
        assert hi >= tensor.max() - params.scale

    def test_minmax_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate_minmax(np.array([]))

    def test_percentile_clips_outliers(self, rng):
        tensor = np.concatenate([rng.normal(0, 1, size=1000), [1000.0]])
        clipped = calibrate_percentile(tensor, percentile=99.0)
        full = calibrate_minmax(tensor)
        assert clipped.scale < full.scale

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            calibrate_percentile(np.ones(10), percentile=40.0)
        with pytest.raises(ValueError):
            calibrate_percentile(np.array([]), percentile=99.0)

    def test_percentile_100_equals_minmax(self, rng):
        tensor = rng.normal(0, 1, size=(50,))
        assert calibrate_percentile(tensor, 100.0) == calibrate_minmax(tensor)


class TestQuantizeDequantize:
    def test_output_dtype_is_uint8(self, rng):
        tensor = rng.normal(size=(4, 5))
        codes = quantize(tensor, calibrate_minmax(tensor))
        assert codes.dtype == np.uint8
        assert codes.shape == tensor.shape

    def test_round_trip_error_bounded(self, rng):
        tensor = rng.normal(0, 2, size=(64, 3))
        params = calibrate_minmax(tensor)
        recovered = dequantize(quantize(tensor, params), params)
        assert np.abs(recovered - tensor).max() <= params.scale / 2 + 1e-12

    def test_out_of_range_values_clip(self):
        params = QuantParams.from_range(0.0, 1.0)
        codes = quantize(np.array([-5.0, 5.0]), params)
        assert codes[0] == 0
        assert codes[1] == 255

    def test_zero_maps_to_zero_point(self):
        params = QuantParams.from_range(-1.0, 1.0)
        assert quantize(np.array([0.0]), params)[0] == params.zero_point

    @given(
        tensor=hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=8),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, tensor):
        params = calibrate_minmax(tensor)
        recovered = dequantize(quantize(tensor, params), params)
        assert np.abs(recovered - tensor).max() <= params.scale / 2 + 1e-9


class TestQuantizedTensor:
    def test_quantize_tensor_auto_calibrates(self, rng):
        tensor = rng.normal(size=(10, 10))
        qt = quantize_tensor(tensor)
        assert isinstance(qt, QuantizedTensor)
        assert qt.shape == (10, 10)
        assert np.abs(qt.dequantize() - tensor).max() <= qt.params.scale

    def test_requires_uint8(self):
        with pytest.raises(TypeError):
            QuantizedTensor(np.zeros(3, dtype=np.int32), QuantParams(1.0, 0))

    def test_explicit_params_respected(self, rng):
        params = QuantParams.from_range(-1.0, 1.0)
        qt = quantize_tensor(rng.uniform(-1, 1, size=(5,)), params)
        assert qt.params is params
