"""Tests of the im2col / col2im lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import col2im, conv_output_size, im2col, im2col_indices


def _direct_conv(x, weight, stride, pad):
    """Naive reference convolution (NHWC, weight (kh, kw, cin, cout))."""
    batch, height, width, cin = x.shape
    kh, kw, _, cout = weight.shape
    if pad:
        x = np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
    out_h = (height + 2 * pad - kh) // stride + 1
    out_w = (width + 2 * pad - kw) // stride + 1
    out = np.zeros((batch, out_h, out_w, cout))
    for b in range(batch):
        for i in range(out_h):
            for j in range(out_w):
                patch = x[b, i * stride : i * stride + kh, j * stride : j * stride + kw, :]
                for f in range(cout):
                    out[b, i, j, f] = (patch * weight[..., f]).sum()
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(16, 3, 1, 1) == 16
        assert conv_output_size(16, 3, 2, 1) == 8
        assert conv_output_size(8, 2, 2, 0) == 4

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_indices_shape(self):
        rows, cols, out_h, out_w = im2col_indices(8, 8, 3, 3, 1, 1)
        assert rows.shape == (64, 9)
        assert cols.shape == (64, 9)
        assert (out_h, out_w) == (8, 8)

    def test_requires_nhwc(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((4, 4, 3)), 3, 3)

    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matmul_equals_direct_convolution(self, rng, stride, pad):
        x = rng.normal(size=(2, 8, 8, 3))
        weight = rng.normal(size=(3, 3, 3, 5))
        cols, out_h, out_w = im2col(x, 3, 3, stride, pad)
        result = (cols @ weight.reshape(-1, 5)).reshape(2, out_h, out_w, 5)
        expected = _direct_conv(x, weight, stride, pad)
        assert np.allclose(result, expected)

    def test_1x1_kernel_is_reshape(self, rng):
        x = rng.normal(size=(2, 5, 5, 4))
        cols, out_h, out_w = im2col(x, 1, 1, 1, 0)
        assert cols.shape == (2 * 25, 4)
        assert np.allclose(cols, x.reshape(-1, 4))

    @given(
        height=st.integers(4, 10),
        width=st.integers(4, 10),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
    )
    @settings(max_examples=30, deadline=None)
    def test_shapes_property(self, height, width, kernel, stride):
        pad = (kernel - 1) // 2
        x = np.zeros((1, height, width, 2))
        cols, out_h, out_w = im2col(x, kernel, kernel, stride, pad)
        assert cols.shape == (out_h * out_w, kernel * kernel * 2)
        assert out_h == conv_output_size(height, kernel, stride, pad)


class TestCol2im:
    def test_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint identity."""
        x = rng.normal(size=(2, 6, 6, 3))
        cols, out_h, out_w = im2col(x, 3, 3, 1, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_no_padding_case(self, rng):
        x = rng.normal(size=(1, 4, 4, 2))
        cols, _, _ = im2col(x, 2, 2, 2, 0)
        back = col2im(np.ones_like(cols), x.shape, 2, 2, 2, 0)
        # Non-overlapping 2x2 windows: every input position is counted once.
        assert np.allclose(back, 1.0)
