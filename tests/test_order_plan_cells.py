"""Edge-case tests of the prefix-aware sweep scheduler `order_plan_cells`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.zoo import build_model
from repro.simulation.campaign import TrainedModel, order_plan_cells, plan_sweep
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    PerforatedProduct,
)


def _trained(name: str = "vgg13", seed: int = 0) -> TrainedModel:
    model = build_model(
        "vgg13", num_classes=4, base_width=8, rng=np.random.default_rng(seed)
    )
    return TrainedModel(
        name=name, dataset_name="synthetic-cifar4", model=model, float_accuracy=0.0
    )


@pytest.fixture(scope="module")
def one_model():
    return [_trained()]


@pytest.fixture(scope="module")
def two_models():
    return [_trained("vgg13-a", seed=0), _trained("vgg13-b", seed=1)]


def _prefix_plans(model, depths, ms):
    """Per-layer plans: exact through ``depth`` layers, perforated after."""
    mac_names = [n.name for n in model.conv_dense_nodes()]
    plans = [("baseline", ExecutionPlan.uniform(AccurateProduct()))]
    for depth in depths:
        for m in ms:
            plan = ExecutionPlan.uniform(AccurateProduct())
            for name in mac_names[depth:]:
                plan = plan.with_layer(name, PerforatedProduct(m))
            plans.append((f"exact{depth}_m{m}", plan))
    return plans


class TestOrderPlanCellsEdgeCases:
    def test_empty_plan_set_yields_empty_schedule(self, one_model):
        assert order_plan_cells(one_model, []) == []

    def test_plan_sweep_rejects_empty_plan_set(self, one_model):
        with pytest.raises(ValueError):
            plan_sweep(one_model, {}, [])

    def test_single_plan_single_cell(self, one_model):
        plans = [("only", ExecutionPlan.uniform(PerforatedProduct(2)))]
        assert order_plan_cells(one_model, plans) == [(0, 0)]

    def test_single_plan_multiple_models(self, two_models):
        plans = [("only", ExecutionPlan.uniform(AccurateProduct()))]
        assert order_plan_cells(two_models, plans) == [(0, 0), (1, 0)]

    def test_identical_fingerprints_preserve_input_order(self, one_model):
        # Four behaviorally identical plans (accurate == perforated m=0):
        # equal sort keys must keep the stable input order.
        plans = [
            ("a", ExecutionPlan.uniform(AccurateProduct())),
            ("b", ExecutionPlan.uniform(PerforatedProduct(0))),
            ("c", ExecutionPlan.uniform(AccurateProduct())),
            ("d", ExecutionPlan.uniform(PerforatedProduct(0, use_control_variate=False))),
        ]
        assert order_plan_cells(one_model, plans) == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_schedule_is_deterministic(self, two_models):
        plans = _prefix_plans(two_models[0].model, depths=(3, 5), ms=(1, 2))
        first = order_plan_cells(two_models, plans)
        assert first == order_plan_cells(two_models, plans)

    def test_cells_grouped_by_model(self, two_models):
        plans = _prefix_plans(two_models[0].model, depths=(3, 5), ms=(1, 2))
        cells = order_plan_cells(two_models, plans)
        model_sequence = [model_index for model_index, _ in cells]
        # One contiguous block per model, in model order.
        assert model_sequence == sorted(model_sequence)
        assert len(cells) == len(plans) * len(two_models)
        assert sorted(cells) == [
            (mi, pi) for mi in range(2) for pi in range(len(plans))
        ]

    def test_prefix_sharing_plans_adjacent(self, one_model):
        plans = _prefix_plans(one_model[0].model, depths=(3, 5), ms=(1, 2))
        cells = order_plan_cells(one_model, plans)
        mac_names = [n.name for n in one_model[0].model.conv_dense_nodes()]
        ordered_fps = [
            plans[plan_index][1].fingerprints(mac_names) for _, plan_index in cells
        ]
        # Within the schedule, plans sharing the deeper exact prefix must be
        # contiguous: the common-prefix length of neighbors never recovers
        # after dropping (a zig-zag would split a shared prefix apart).
        def lcp(a, b):
            n = 0
            while n < len(a) and a[n] == b[n]:
                n += 1
            return n

        neighbor_lcp = [
            lcp(ordered_fps[i], ordered_fps[i + 1])
            for i in range(len(ordered_fps) - 1)
        ]
        for fps in set(map(tuple, ordered_fps)):
            positions = [i for i, fp in enumerate(ordered_fps) if fp == fps]
            assert positions == list(range(positions[0], positions[-1] + 1))
        assert max(neighbor_lcp) >= 3  # the depth-3 prefix is exploited


class TestContiguousChunkingStability:
    """Pin the worker-chunking contract of the contiguous plan_sweep path."""

    @staticmethod
    def _chunks(cells, max_workers):
        chunksize = -(-len(cells) // max_workers)  # ceil-div, as in _run_sweep
        return [cells[i : i + chunksize] for i in range(0, len(cells), chunksize)]

    def test_chunks_are_contiguous_schedule_slices(self, two_models):
        plans = _prefix_plans(two_models[0].model, depths=(3, 5), ms=(1, 2))
        cells = order_plan_cells(two_models, plans)
        for workers in (1, 2, 3, 4, len(cells), len(cells) + 5):
            chunks = self._chunks(cells, workers)
            assert sum(chunks, []) == cells  # exact cover, original order
            assert len(chunks) <= workers
            sizes = {len(c) for c in chunks[:-1]}
            assert len(sizes) <= 1  # equal-size leading chunks

    def test_chunking_never_splits_a_model_with_aligned_workers(self, two_models):
        plans = _prefix_plans(two_models[0].model, depths=(3, 5), ms=(1, 2))
        cells = order_plan_cells(two_models, plans)
        chunks = self._chunks(cells, max_workers=2)
        assert len(chunks) == 2
        assert {mi for mi, _ in chunks[0]} == {0}
        assert {mi for mi, _ in chunks[1]} == {1}
