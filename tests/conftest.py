"""Shared fixtures of the test suite.

The expensive fixtures (a trained reference model and its approximate
executor) are session-scoped and deliberately tiny so the whole suite stays
fast while still exercising the full train → quantize → approximate-inference
pipeline on a real (if small) network.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
from repro.models.zoo import build_model
from repro.nn.optimizers import SGD
from repro.nn.training import Trainer
from repro.simulation.inference import ApproximateExecutor


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic random generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small, easy synthetic dataset used by the training-dependent tests."""
    config = SyntheticCifarConfig(
        num_classes=4,
        image_size=16,
        train_per_class=40,
        test_per_class=10,
        noise_std=0.10,
        confusion=0.20,
        seed=7,
    )
    return make_synthetic_cifar(config)


@pytest.fixture(scope="session")
def trained_tiny_model(tiny_dataset):
    """A small VGG-13-style model trained on the tiny dataset (session-scoped)."""
    model = build_model(
        "vgg13",
        num_classes=tiny_dataset.num_classes,
        base_width=8,
        rng=np.random.default_rng(0),
    )
    trainer = Trainer(model, SGD(learning_rate=0.08), rng=np.random.default_rng(0))
    trainer.fit(
        tiny_dataset.train_images,
        tiny_dataset.train_labels,
        epochs=3,
        batch_size=32,
    )
    return model


@pytest.fixture(scope="session")
def tiny_executor(trained_tiny_model, tiny_dataset):
    """Approximate executor calibrated on the tiny dataset."""
    return ApproximateExecutor(trained_tiny_model, tiny_dataset.train_images[:64])
