"""Behavioural tests of the approximate multiplier models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multipliers import (
    AccurateMultiplier,
    CompensatedMultiplier,
    LUTMultiplier,
    PerforatedMultiplier,
    TruncatedMultiplier,
    apply_lut,
    build_lut,
)

operand = st.integers(min_value=0, max_value=255)


class TestAccurateMultiplier:
    def test_exact_products(self, rng):
        mult = AccurateMultiplier()
        w = rng.integers(0, 256, size=50)
        a = rng.integers(0, 256, size=50)
        assert np.array_equal(mult.multiply(w, a), w * a)

    def test_zero_error(self):
        assert AccurateMultiplier().error_table().max() == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            AccurateMultiplier().multiply(np.array([256]), np.array([1]))
        with pytest.raises(ValueError):
            AccurateMultiplier().multiply(np.array([1]), np.array([-1]))


class TestPerforatedMultiplier:
    def test_m_zero_is_accurate(self, rng):
        mult = PerforatedMultiplier(0)
        w = rng.integers(0, 256, size=30)
        a = rng.integers(0, 256, size=30)
        assert np.array_equal(mult.multiply(w, a), w * a)

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            PerforatedMultiplier(8)
        with pytest.raises(ValueError):
            PerforatedMultiplier(-1)

    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_error_identity_eq5(self, m, rng):
        """eps = W * (A mod 2^m) — eq. (5) of the paper, exactly."""
        mult = PerforatedMultiplier(m)
        w = rng.integers(0, 256, size=200)
        a = rng.integers(0, 256, size=200)
        assert np.array_equal(mult.error(w, a), w * (a & ((1 << m) - 1)))

    @given(w=operand, a=operand, m=st.integers(1, 7))
    @settings(max_examples=200, deadline=None)
    def test_error_identity_property(self, w, a, m):
        mult = PerforatedMultiplier(m)
        assert int(mult.error(np.array([w]), np.array([a]))[0]) == w * (a % (1 << m))

    @given(w=operand, a=operand, m=st.integers(1, 7))
    @settings(max_examples=200, deadline=None)
    def test_product_never_exceeds_exact(self, w, a, m):
        """Perforation only drops partial products, so approx <= exact."""
        mult = PerforatedMultiplier(m)
        assert int(mult.multiply(np.array([w]), np.array([a]))[0]) <= w * a

    def test_x_moments(self):
        mult = PerforatedMultiplier(3)
        x = np.arange(8)
        assert mult.x_mean == pytest.approx(x.mean())
        assert mult.x_variance == pytest.approx(x.var())

    def test_perforated_bits(self):
        mult = PerforatedMultiplier(2)
        assert np.array_equal(
            mult.perforated_bits(np.array([0, 1, 2, 3, 4, 255])),
            np.array([0, 1, 2, 3, 0, 3]),
        )

    def test_error_statistics_formulas(self, rng):
        """Analytical mean/variance match Monte Carlo over uniform activations."""
        m = 2
        mult = PerforatedMultiplier(m)
        weights = rng.integers(80, 180, size=5000).astype(float)
        activations = rng.integers(0, 256, size=5000)
        errors = weights * (activations & 3)
        assert mult.error_mean(weights.mean()) == pytest.approx(errors.mean(), rel=0.1)
        assert mult.error_variance((weights**2).mean(), weights.mean()) == pytest.approx(
            errors.var(), rel=0.1
        )


class TestTruncatedMultiplier:
    def test_masks(self):
        mult = TruncatedMultiplier(weight_bits=2, activation_bits=3)
        assert mult.weight_mask == 0xFC
        assert mult.activation_mask == 0xF8

    def test_zero_truncation_is_exact(self, rng):
        mult = TruncatedMultiplier(0, 0)
        w = rng.integers(0, 256, size=20)
        a = rng.integers(0, 256, size=20)
        assert np.array_equal(mult.multiply(w, a), w * a)

    @pytest.mark.parametrize("wb,ab", [(1, 0), (0, 2), (2, 2)])
    def test_truncation_formula(self, wb, ab, rng):
        mult = TruncatedMultiplier(wb, ab)
        w = rng.integers(0, 256, size=100)
        a = rng.integers(0, 256, size=100)
        expected = (w & ~((1 << wb) - 1)) * (a & ~((1 << ab) - 1))
        assert np.array_equal(mult.multiply(w, a), expected)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            TruncatedMultiplier(8, 0)


class TestCompensatedMultiplier:
    def test_mean_error_nullified(self):
        base = TruncatedMultiplier(0, 2)
        compensated = CompensatedMultiplier(base)
        assert abs(compensated.error_table().mean()) <= 0.5

    def test_explicit_offset(self, rng):
        base = TruncatedMultiplier(0, 1)
        compensated = CompensatedMultiplier(base, offset=7)
        w = rng.integers(0, 256, size=10)
        a = rng.integers(0, 256, size=10)
        assert np.array_equal(compensated.multiply(w, a), base.multiply(w, a) + 7)

    def test_variance_unchanged(self):
        """Constant compensation cannot reduce the error variance (Section III)."""
        base = TruncatedMultiplier(0, 2)
        compensated = CompensatedMultiplier(base)
        assert compensated.error_table().var() == pytest.approx(base.error_table().var())

    def test_mean_error_helper(self):
        base = TruncatedMultiplier(0, 2)
        assert CompensatedMultiplier.mean_error_of(base) == pytest.approx(
            base.error_table().mean()
        )


class TestLUT:
    def test_lut_matches_multiplier(self):
        mult = PerforatedMultiplier(2)
        lut = build_lut(mult)
        assert lut.shape == (256, 256)
        assert lut[7, 13] == mult.multiply(np.array([7]), np.array([13]))[0]

    def test_lut_multiplier_round_trip(self, rng):
        base = PerforatedMultiplier(3)
        frozen = LUTMultiplier.from_multiplier(base)
        w = rng.integers(0, 256, size=(5, 7))
        a = rng.integers(0, 256, size=(5, 7))
        assert np.array_equal(frozen.multiply(w, a), base.multiply(w, a))

    def test_apply_lut_broadcasting(self, rng):
        lut = build_lut(AccurateMultiplier())
        w = rng.integers(0, 256, size=(4, 1, 6))
        a = rng.integers(0, 256, size=(1, 3, 6))
        out = apply_lut(lut, w, a)
        assert out.shape == (4, 3, 6)
        assert np.array_equal(out, w * a)

    def test_apply_lut_chunked_matches_unchunked(self, rng):
        lut = build_lut(TruncatedMultiplier(1, 1))
        w = rng.integers(0, 256, size=5000)
        a = rng.integers(0, 256, size=5000)
        assert np.array_equal(apply_lut(lut, w, a, chunk_size=64), apply_lut(lut, w, a))

    def test_lut_shape_validated(self):
        with pytest.raises(ValueError):
            LUTMultiplier(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            apply_lut(np.zeros((4, 4)), np.array([1]), np.array([1]))

    def test_lut_is_read_only_view(self):
        frozen = LUTMultiplier.from_multiplier(AccurateMultiplier())
        with pytest.raises(ValueError):
            frozen.lut[0, 0] = 5
