"""Tests of the model zoo and the dataset generators."""

import numpy as np
import pytest

from repro.datasets.cifar import load_cifar_like
from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
from repro.models.googlenet import build_googlenet
from repro.models.resnet import build_resnet
from repro.models.shufflenet import build_shufflenet
from repro.models.vgg import build_vgg
from repro.models.zoo import MODEL_NAMES, build_model, model_spec


class TestModelZoo:
    def test_registry_contains_papers_six_networks(self):
        assert set(MODEL_NAMES) == {
            "googlenet",
            "resnet44",
            "resnet56",
            "shufflenet",
            "vgg13",
            "vgg16",
        }

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            model_spec("alexnet")

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_forward_shapes(self, name, rng):
        model = build_model(name, num_classes=10, rng=rng)
        out = model.forward(rng.uniform(size=(2, 16, 16, 3)))
        assert out.shape == (2, 10)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_num_classes_respected(self, name, rng):
        model = build_model(name, num_classes=7, rng=rng)
        assert model.forward(rng.uniform(size=(1, 16, 16, 3))).shape == (1, 7)

    def test_depth_ordering_preserved(self, rng):
        """ResNet-56-like is deeper (more conv layers) than ResNet-44-like,
        and VGG-16-like deeper than VGG-13-like — matching the families'
        ordering in the paper."""
        def conv_count(name):
            return len(build_model(name, num_classes=10, rng=rng).conv_dense_nodes())

        assert conv_count("resnet56") > conv_count("resnet44")
        assert conv_count("vgg16") > conv_count("vgg13")

    def test_models_are_trainable_one_step(self, rng):
        """Every architecture supports a full forward/backward/update step."""
        from repro.nn.losses import softmax_cross_entropy
        from repro.nn.optimizers import SGD

        x = rng.uniform(size=(4, 16, 16, 3))
        y = rng.integers(0, 3, size=4)
        for name in MODEL_NAMES:
            model = build_model(name, num_classes=3, rng=rng)
            logits = model.forward(x, training=True)
            loss, grad = softmax_cross_entropy(logits, y)
            model.backward(grad)
            SGD(learning_rate=0.01).step(model)
            assert np.isfinite(model.forward(x)).all(), name

    def test_invalid_depths_rejected(self):
        with pytest.raises(ValueError):
            build_vgg(depth=19)
        with pytest.raises(ValueError):
            build_resnet(depth=20)

    def test_googlenet_has_concat_branches(self, rng):
        model = build_googlenet(num_classes=5, rng=rng)
        layer_types = {type(node.layer).__name__ for node in model.nodes}
        assert "Concat" in layer_types

    def test_shufflenet_has_shuffle_and_groups(self, rng):
        model = build_shufflenet(num_classes=5, rng=rng)
        layer_types = {type(node.layer).__name__ for node in model.nodes}
        assert "ChannelShuffle" in layer_types
        groups = {
            node.layer.groups
            for node in model.conv_dense_nodes()
            if hasattr(node.layer, "groups")
        }
        assert any(g > 1 for g in groups)

    def test_shufflenet_width_validation(self):
        with pytest.raises(ValueError):
            build_shufflenet(base_width=10, groups=4)


class TestSyntheticDataset:
    def test_shapes_and_ranges(self):
        config = SyntheticCifarConfig(num_classes=5, train_per_class=10, test_per_class=4)
        ds = make_synthetic_cifar(config)
        assert ds.train_images.shape == (50, 16, 16, 3)
        assert ds.test_images.shape == (20, 16, 16, 3)
        assert ds.train_images.min() >= 0.0 and ds.train_images.max() <= 1.0
        assert ds.num_classes == 5
        assert set(np.unique(ds.test_labels)) == set(range(5))

    def test_deterministic_given_seed(self):
        config = SyntheticCifarConfig(num_classes=3, train_per_class=5, test_per_class=2, seed=9)
        a = make_synthetic_cifar(config)
        b = make_synthetic_cifar(config)
        assert np.array_equal(a.train_images, b.train_images)
        assert np.array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = make_synthetic_cifar(SyntheticCifarConfig(num_classes=3, train_per_class=5, test_per_class=2, seed=1))
        b = make_synthetic_cifar(SyntheticCifarConfig(num_classes=3, train_per_class=5, test_per_class=2, seed=2))
        assert not np.array_equal(a.train_images, b.train_images)

    def test_classes_are_separable(self):
        """A trivial nearest-class-mean classifier should beat chance by a lot,
        otherwise the dataset would be unlearnable for the CNNs."""
        ds = make_synthetic_cifar(
            SyntheticCifarConfig(num_classes=4, train_per_class=30, test_per_class=10, seed=3)
        )
        means = np.stack(
            [ds.train_images[ds.train_labels == c].mean(axis=0) for c in range(4)]
        )
        flat_test = ds.test_images.reshape(len(ds.test_images), -1)
        distances = ((flat_test[:, None, :] - means.reshape(4, -1)[None, :, :]) ** 2).sum(-1)
        accuracy = (distances.argmin(axis=1) == ds.test_labels).mean()
        assert accuracy > 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticCifarConfig(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticCifarConfig(image_size=4)
        with pytest.raises(ValueError):
            SyntheticCifarConfig(confusion=1.5)
        with pytest.raises(ValueError):
            SyntheticCifarConfig(train_per_class=0)

    def test_dataset_properties(self):
        ds = make_synthetic_cifar(SyntheticCifarConfig(num_classes=3, train_per_class=4, test_per_class=2))
        assert ds.image_shape == (16, 16, 3)
        assert ds.n_train == 12
        assert ds.n_test == 6


class TestCifarLoader:
    def test_falls_back_to_synthetic(self, tmp_path):
        ds = load_cifar_like(num_classes=10, data_root=str(tmp_path))
        assert ds.num_classes == 10
        assert ds.name.startswith("synthetic")

    def test_hundred_class_variant(self, tmp_path):
        ds = load_cifar_like(
            num_classes=100,
            data_root=str(tmp_path),
            synthetic_config=SyntheticCifarConfig(num_classes=100, train_per_class=2, test_per_class=1),
        )
        assert ds.num_classes == 100

    def test_invalid_class_count_rejected(self):
        with pytest.raises(ValueError):
            load_cifar_like(num_classes=20)

    def test_mismatched_synthetic_config_rejected(self):
        with pytest.raises(ValueError):
            load_cifar_like(
                num_classes=100,
                data_root="/nonexistent",
                synthetic_config=SyntheticCifarConfig(num_classes=10),
            )
