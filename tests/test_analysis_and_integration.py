"""Tests of the analysis helpers plus an end-to-end integration test."""

import numpy as np
import pytest

from repro.analysis.reporting import Table, format_table
from repro.analysis.statistics import (
    filter_weight_distribution,
    model_variance_reduction,
    model_weight_distributions,
)
from repro.core.accelerator_model import AcceleratorConfig
from repro.accelerator.energy import network_energy
from repro.accelerator.scheduling import layer_shapes_of_model
from repro.hardware.area_power import array_cost
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    PerforatedProduct,
)
from repro.simulation.metrics import accuracy


class TestReporting:
    def test_table_render_and_csv(self):
        table = Table(title="demo", columns=["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", 3.25)
        text = table.render()
        assert "demo" in text and "2.50" in text and "x" in text
        csv = table.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert "3.2500" in csv

    def test_row_length_checked(self):
        table = Table(title="demo", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
        with pytest.raises(ValueError):
            format_table("t", ["a"], [[1, 2]])

    def test_bool_formatting(self):
        table = Table(title="t", columns=["flag"])
        table.add_row(True)
        assert "True" in table.render()


class TestWeightStatistics:
    def test_distribution_of_trained_filter(self, trained_tiny_model):
        node = trained_tiny_model.conv_dense_nodes()[0]
        dist = filter_weight_distribution(trained_tiny_model, node.name, 0)
        assert dist.codes.min() >= 0 and dist.codes.max() <= 255
        assert dist.pdf().sum() == pytest.approx(1.0)
        assert 0.0 <= dist.concentration <= 1.0

    def test_unknown_layer_and_filter_rejected(self, trained_tiny_model):
        with pytest.raises(KeyError):
            filter_weight_distribution(trained_tiny_model, "not_a_layer", 0)
        node = trained_tiny_model.conv_dense_nodes()[0]
        with pytest.raises(IndexError):
            filter_weight_distribution(trained_tiny_model, node.name, 10_000)

    def test_random_sampling(self, trained_tiny_model, rng):
        dists = model_weight_distributions(trained_tiny_model, n_filters=4, rng=rng)
        assert len(dists) == 4

    def test_variance_reduction_positive(self, trained_tiny_model):
        """Trained weight distributions must yield a variance-reduction factor > 1
        for most layers — the Fig. 1 argument for why the control variate works."""
        factors = model_variance_reduction(trained_tiny_model, m=2)
        values = np.array(list(factors.values()))
        assert (values > 1.0).mean() > 0.8


class TestEndToEnd:
    def test_full_pipeline(self, tiny_executor, tiny_dataset, trained_tiny_model):
        """Train -> quantize -> approximate inference -> hardware/energy accounting.

        Asserts the paper's headline relationships on the tiny setup:
        the control variate keeps accuracy close to the accurate design while
        the modeled accelerator consumes less power and energy.
        """
        images, labels = tiny_dataset.test_images, tiny_dataset.test_labels
        baseline_acc = accuracy(
            tiny_executor.predict(images, ExecutionPlan.uniform(AccurateProduct())), labels
        )
        ours_acc = accuracy(
            tiny_executor.predict(images, ExecutionPlan.uniform(PerforatedProduct(2, True))),
            labels,
        )
        plain_acc = accuracy(
            tiny_executor.predict(images, ExecutionPlan.uniform(PerforatedProduct(2, False))),
            labels,
        )
        assert baseline_acc - ours_acc <= 0.12
        assert ours_acc >= plain_acc

        accurate_cfg = AcceleratorConfig.accurate(64)
        ours_cfg = AcceleratorConfig.make(64, 2, use_control_variate=True)
        shapes = layer_shapes_of_model(trained_tiny_model, tiny_dataset.image_shape)
        accurate_energy = network_energy(
            shapes, accurate_cfg, array_cost(accurate_cfg).power_mw
        )
        ours_energy = network_energy(shapes, ours_cfg, array_cost(ours_cfg).power_mw)
        assert ours_energy.total_energy_nj < accurate_energy.total_energy_nj
        reduction = 1 - ours_energy.total_energy_nj / accurate_energy.total_energy_nj
        assert 0.25 < reduction < 0.45  # ~35 % at m = 2, as in the paper
