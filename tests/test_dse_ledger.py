"""Tests of the campaign ledger, its content addressing, and SeedBank."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.seeding import SeedBank
from repro.dse.ledger import CampaignLedger, evaluation_context_key, plan_key
from repro.models.zoo import build_model
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    LUTProduct,
    PerforatedProduct,
)
from repro.multipliers.perforated import PerforatedMultiplier

pytestmark = pytest.mark.dse


@pytest.fixture(scope="module")
def small_model():
    return build_model("vgg13", num_classes=4, base_width=8, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def context(small_model):
    rng = np.random.default_rng(3)
    eval_images = rng.uniform(size=(8, 16, 16, 3))
    eval_labels = rng.integers(0, 4, 8)
    calib = rng.uniform(size=(4, 16, 16, 3))
    key = evaluation_context_key(small_model, eval_images, eval_labels, calib)
    return small_model, eval_images, eval_labels, calib, key


LAYERS = ("s0_c0_conv", "s0_c1_conv", "classifier")


class TestContextKey:
    def test_stable_across_calls(self, context):
        model, images, labels, calib, key = context
        assert evaluation_context_key(model, images, labels, calib) == key

    def test_sensitive_to_eval_arrays(self, context):
        model, images, labels, calib, key = context
        perturbed = images.copy()
        perturbed[0, 0, 0, 0] += 1e-9
        assert evaluation_context_key(model, perturbed, labels, calib) != key

    def test_sensitive_to_calibration_and_knobs(self, context):
        model, images, labels, calib, key = context
        assert evaluation_context_key(model, images, labels, calib[:2]) != key
        assert (
            evaluation_context_key(model, images, labels, calib, batch_size=128) != key
        )
        assert evaluation_context_key(model, images, labels, calib, tag="other") != key

    def test_sensitive_to_model_parameters(self, context):
        _, images, labels, calib, key = context
        other = build_model(
            "vgg13", num_classes=4, base_width=8, rng=np.random.default_rng(1)
        )
        assert evaluation_context_key(other, images, labels, calib) != key


class TestPlanKey:
    def test_behavioral_addressing_m0_equals_accurate(self, context):
        *_, key = context
        accurate = ExecutionPlan.uniform(AccurateProduct())
        m0 = ExecutionPlan.uniform(PerforatedProduct(0))
        assert plan_key(key, accurate, LAYERS) == plan_key(key, m0, LAYERS)

    def test_distinct_plans_distinct_keys(self, context):
        *_, key = context
        a = ExecutionPlan.uniform(PerforatedProduct(1))
        b = ExecutionPlan.uniform(PerforatedProduct(2))
        assert plan_key(key, a, LAYERS) != plan_key(key, b, LAYERS)

    def test_lut_plans_keyed_by_table_digest(self, context):
        *_, key = context
        a = ExecutionPlan.uniform(LUTProduct(PerforatedMultiplier(1)))
        b = ExecutionPlan.uniform(LUTProduct(PerforatedMultiplier(1)))
        assert plan_key(key, a, LAYERS) == plan_key(key, b, LAYERS)

    def test_context_partitions_records(self, context):
        *_, key = context
        plan = ExecutionPlan.uniform(PerforatedProduct(1))
        assert plan_key(key, plan, LAYERS) != plan_key("other-context", plan, LAYERS)


class TestCampaignLedger:
    def test_round_trip_and_counters(self, tmp_path):
        ledger = CampaignLedger(path=str(tmp_path))
        assert ledger.get("k1") is None
        ledger.put("k1", {"accuracy": 0.5})
        assert ledger.get("k1") == {"accuracy": 0.5}
        assert ledger.hits == 1 and ledger.misses == 1
        assert len(ledger) == 1

    def test_records_survive_new_instance(self, tmp_path):
        CampaignLedger(path=str(tmp_path)).put("k", {"energy_nj": 1.0})
        fresh = CampaignLedger(path=str(tmp_path))
        assert fresh.contains("k")
        assert fresh.get("k") == {"energy_nj": 1.0}

    def test_record_files_are_valid_json(self, tmp_path):
        ledger = CampaignLedger(path=str(tmp_path))
        ledger.put("deadbeef", {"label": "A", "accuracy": 0.75})
        path = os.path.join(str(tmp_path), "deadbeef.json")
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["label"] == "A"
        # No temp files left behind.
        assert all(not name.endswith(".tmp") for name in os.listdir(str(tmp_path)))

    def test_corrupt_record_treated_as_missing(self, tmp_path):
        ledger = CampaignLedger(path=str(tmp_path))
        with open(os.path.join(str(tmp_path), "bad.json"), "w") as handle:
            handle.write("{not json")
        assert ledger.get("bad") is None

    def test_memory_only_ledger(self):
        ledger = CampaignLedger(path=None)
        ledger.put("k", {"a": 1})
        assert ledger.get("k") == {"a": 1}
        assert ledger.stats()["records"] == 1

    def test_contains_does_not_touch_counters(self, tmp_path):
        ledger = CampaignLedger(path=str(tmp_path))
        ledger.put("k", {})
        assert ledger.contains("k") and not ledger.contains("missing")
        assert ledger.hits == 0 and ledger.misses == 0


class TestSeedBank:
    def test_streams_are_deterministic(self):
        a = SeedBank(42).generator("nsga2").integers(0, 1000, 5)
        b = SeedBank(42).generator("nsga2").integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_streams_are_independent_by_name(self):
        bank = SeedBank(42)
        assert bank.seed_for("nsga2") != bank.seed_for("dataset")
        a = bank.generator("nsga2").integers(0, 1000, 5)
        b = bank.generator("dataset").integers(0, 1000, 5)
        assert not np.array_equal(a, b)

    def test_root_seed_changes_every_stream(self):
        assert SeedBank(1).seed_for("x") != SeedBank(2).seed_for("x")

    def test_none_seed_is_stable_default(self):
        assert SeedBank(None).seed_for("x") == SeedBank(None).seed_for("x")

    def test_spawn_is_hierarchical(self):
        child = SeedBank(7).spawn("worker")
        assert child.root_seed == SeedBank(7).seed_for("worker")
