"""Plan-invariant prefix reuse: fingerprints, checkpoints, bit-exactness.

The central property pinned here is the acceptance criterion of the prefix
machinery: a multi-plan sweep with prefix reuse (and the activation-code
cache) enabled is **bit-identical** to evaluating every plan on a fresh
executor with all reuse disabled — for randomized plan sets that diverge at
varying depths, including plans that already differ at the first MAC layer
(zero-length shared prefix).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.perforated import PerforatedMultiplier
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    LUTProduct,
    PerforatedProduct,
)


@pytest.fixture()
def reuse_executor(trained_tiny_model, tiny_dataset):
    """A private executor with all cross-plan reuse enabled (default)."""
    return ApproximateExecutor(trained_tiny_model, tiny_dataset.train_images[:64])


@pytest.fixture(scope="module")
def reference_executor(trained_tiny_model, tiny_dataset):
    """Reference executor with every cross-plan cache disabled."""
    return ApproximateExecutor(
        trained_tiny_model,
        tiny_dataset.train_images[:64],
        reuse_plan_invariant_acts=False,
        reuse_plan_invariant_prefix=False,
    )


def _exact_prefix_plan(mac_names: list[str], depth: int, model) -> ExecutionPlan:
    """Exact through ``depth`` MAC layers, ``model`` everywhere after."""
    plan = ExecutionPlan.uniform(AccurateProduct())
    for name in mac_names[depth:]:
        plan = plan.with_layer(name, model)
    return plan


class TestFingerprints:
    def test_accurate_and_m0_share_fingerprint(self):
        assert AccurateProduct().fingerprint() == ("accurate",)
        assert PerforatedProduct(0, True).fingerprint() == ("accurate",)
        assert PerforatedProduct(0, False).fingerprint() == ("accurate",)

    def test_perforated_structural_equality(self):
        assert PerforatedProduct(2, True).fingerprint() == PerforatedProduct(2, True).fingerprint()
        assert PerforatedProduct(2, True).fingerprint() != PerforatedProduct(2, False).fingerprint()
        assert PerforatedProduct(2, True).fingerprint() != PerforatedProduct(3, True).fingerprint()

    def test_lut_fingerprint_keyed_by_table(self):
        a = LUTProduct(PerforatedMultiplier(2))
        b = LUTProduct(PerforatedMultiplier(2))
        c = LUTProduct(PerforatedMultiplier(3))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        assert a.fingerprint() != LUTProduct(AccurateMultiplier()).fingerprint()

    def test_plan_fingerprints(self):
        plan = ExecutionPlan.uniform(AccurateProduct()).with_layer(
            "conv2", PerforatedProduct(1)
        )
        fps = plan.fingerprints(["conv1", "conv2"])
        assert fps == (("accurate",), ("perforated", 1, True))


class TestPlanContext:
    def test_global_prefix_depth(self, reuse_executor):
        names = reuse_executor.mac_layer_names()
        perf = PerforatedProduct(2)
        plans = [
            _exact_prefix_plan(names, 3, perf),
            _exact_prefix_plan(names, 5, perf),
        ]
        assert reuse_executor.plan_invariant_prefix(plans) == 3
        # identical plans agree everywhere
        assert reuse_executor.plan_invariant_prefix([plans[0], plans[0]]) == len(names)
        # divergence at the first MAC layer: zero-length prefix
        zero = [ExecutionPlan.uniform(AccurateProduct()), ExecutionPlan.uniform(perf)]
        assert reuse_executor.plan_invariant_prefix(zero) == 0

    def test_checkpoint_depths_cover_pairwise_divergence(self, reuse_executor):
        names = reuse_executor.mac_layer_names()
        plans = [
            _exact_prefix_plan(names, 0, PerforatedProduct(1)),
            _exact_prefix_plan(names, 2, PerforatedProduct(1)),
            _exact_prefix_plan(names, 5, PerforatedProduct(1)),
            _exact_prefix_plan(names, 5, PerforatedProduct(2)),
        ]
        depth = reuse_executor.set_plan_context(plans)
        assert depth == 0  # the k=0 plan diverges immediately
        # pairwise divergence depths: (k2 vs k5*) -> 2, (k5 vs k5) -> 5
        assert reuse_executor.plan_context.depths == (2, 5)

    def test_empty_plan_set_rejected(self, reuse_executor):
        with pytest.raises(ValueError):
            reuse_executor.set_plan_context([])

    def test_clear_plan_context(self, reuse_executor):
        reuse_executor.set_plan_context([ExecutionPlan.uniform(PerforatedProduct(1))] * 2)
        assert reuse_executor.plan_context is not None
        reuse_executor.clear_plan_context()
        assert reuse_executor.plan_context is None


class TestPrefixBitExactness:
    @pytest.mark.parametrize("trial", range(3))
    def test_randomized_plans_bit_identical_to_fresh_executors(
        self, trial, reuse_executor, reference_executor, tiny_dataset, rng
    ):
        """Property test: context-armed sweep == per-plan no-reuse execution.

        Plans diverge at randomized depths — always including a pair that
        diverges at the first MAC layer (zero-length shared prefix) — and
        are evaluated over two eval batches in a shuffled order, twice, so
        both the checkpoint-record and the checkpoint-resume paths run.
        """
        trial_rng = np.random.default_rng(1000 + trial)
        names = reuse_executor.mac_layer_names()
        models = [
            PerforatedProduct(int(trial_rng.integers(1, 4)), bool(trial_rng.integers(2))),
            PerforatedProduct(int(trial_rng.integers(1, 4)), bool(trial_rng.integers(2))),
            LUTProduct(PerforatedMultiplier(2)),
        ]
        depths = sorted(
            int(d) for d in trial_rng.integers(0, len(names) + 1, size=4)
        )
        depths[0] = 0  # force a zero-length-prefix plan into every set
        plans = [
            _exact_prefix_plan(names, depth, models[i % len(models)])
            for i, depth in enumerate(depths)
        ]
        plans.append(ExecutionPlan.uniform(AccurateProduct()))
        reuse_executor.set_plan_context(plans)

        batches = [tiny_dataset.test_images[:12], tiny_dataset.test_images[12:24]]
        order = list(range(len(plans))) * 2
        trial_rng.shuffle(order)
        for plan_index in order:
            for batch in batches:
                np.testing.assert_array_equal(
                    reuse_executor.forward(batch, plans[plan_index]),
                    reference_executor.forward(batch, plans[plan_index]),
                )

    def test_checkpoints_actually_hit(self, reuse_executor, tiny_dataset):
        names = reuse_executor.mac_layer_names()
        perf = PerforatedProduct(2, use_control_variate=False)
        plans = [
            _exact_prefix_plan(names, 4, perf),
            _exact_prefix_plan(names, 4, PerforatedProduct(1)),
        ]
        reuse_executor.set_plan_context(plans)
        batch = tiny_dataset.test_images[:8]
        reuse_executor.forward(batch, plans[0])
        assert reuse_executor.prefix_cache_misses == 1
        assert reuse_executor.prefix_cache_hits == 0
        reuse_executor.forward(batch, plans[1])
        assert reuse_executor.prefix_cache_hits == 1
        # the checkpoint layer's quantized input codes are reused as well
        assert reuse_executor.act_cache_hits >= 1

    def test_oversized_eval_set_pins_only_cap_batches(
        self, trained_tiny_model, tiny_dataset, reference_executor
    ):
        """An eval set spanning more batches than the LRU cap must not
        thrash the cache: logits() pins checkpoints for the first cap-many
        batches only (never evicted in plan-major order, so later plans
        still resume on them) and skips stores beyond — bit-exact either
        way."""
        executor = ApproximateExecutor(
            trained_tiny_model,
            tiny_dataset.train_images[:64],
            prefix_cache_batches=2,
        )
        names = executor.mac_layer_names()
        perf = PerforatedProduct(2)
        plans = [
            _exact_prefix_plan(names, 4, perf),
            _exact_prefix_plan(names, 4, PerforatedProduct(1)),
        ]
        executor.set_plan_context(plans)
        images = tiny_dataset.test_images[:30]
        for plan in plans:  # 30 images / batch 10 = 3 batches > cap of 2
            np.testing.assert_array_equal(
                executor.logits(images, plan, batch_size=10),
                reference_executor.logits(images, plan, batch_size=10),
            )
        # the first two batches stayed pinned and served the second plan
        assert all(len(entries) <= 2 for entries in executor._prefix_cache.values())
        assert executor.prefix_cache_hits >= 2
        assert executor._suppress_prefix_stores is False  # restored

    def test_plan_outside_context_is_correct(
        self, reuse_executor, reference_executor, tiny_dataset
    ):
        """A plan never declared in the context must still run bit-exact."""
        names = reuse_executor.mac_layer_names()
        perf = PerforatedProduct(1)
        reuse_executor.set_plan_context(
            [_exact_prefix_plan(names, 2, perf), _exact_prefix_plan(names, 4, perf)]
        )
        batch = tiny_dataset.test_images[:8]
        reuse_executor.forward(batch, _exact_prefix_plan(names, 2, perf))
        outsider = _exact_prefix_plan(names, 3, PerforatedProduct(3, False))
        np.testing.assert_array_equal(
            reuse_executor.forward(batch, outsider),
            reference_executor.forward(batch, outsider),
        )

    def test_weight_override_invalidates_checkpoints(
        self, reuse_executor, tiny_dataset
    ):
        """Prefix checkpoints embed prefix-layer weights: overriding them
        must drop the checkpoints, not serve stale activations."""
        names = reuse_executor.mac_layer_names()
        perf = PerforatedProduct(2)
        plans = [_exact_prefix_plan(names, 3, perf), _exact_prefix_plan(names, 5, perf)]
        reuse_executor.set_plan_context(plans)
        batch = tiny_dataset.test_images[:8]
        before = reuse_executor.forward(batch, plans[0])
        first = names[0]
        zeroed = [np.zeros_like(c) for c in reuse_executor.quantized_weights(first)]
        reuse_executor.set_weight_override(first, zeroed)
        try:
            overridden = reuse_executor.forward(batch, plans[0])
        finally:
            reuse_executor.clear_weight_overrides()
        restored = reuse_executor.forward(batch, plans[0])
        assert not np.allclose(overridden, before)
        np.testing.assert_array_equal(restored, before)


class TestActBufferReshaping:
    def test_batch_size_change_between_calls_is_bit_exact(
        self, trained_tiny_model, tiny_dataset
    ):
        """Regression: per-(layer, group) activation buffers persist across
        forward calls; growing, shrinking and re-growing the batch must
        reallocate / slice correctly, never write into a stale shape."""
        executor = ApproximateExecutor(
            trained_tiny_model,
            tiny_dataset.train_images[:64],
            reuse_plan_invariant_acts=False,  # exercise the raw buffer path
        )
        plan = ExecutionPlan.uniform(PerforatedProduct(2))
        images = tiny_dataset.test_images
        for size in (16, 4, 16, 7, 20, 1):
            batch = images[:size]
            # fresh executor per size: an oracle whose buffers never churned
            fresh = ApproximateExecutor(
                trained_tiny_model,
                tiny_dataset.train_images[:64],
                reuse_plan_invariant_acts=False,
            )
            np.testing.assert_array_equal(
                executor.forward(batch, plan), fresh.forward(batch, plan)
            )

    def test_buffers_grow_but_never_shrink_mid_sequence(
        self, trained_tiny_model, tiny_dataset
    ):
        executor = ApproximateExecutor(
            trained_tiny_model,
            tiny_dataset.train_images[:64],
            reuse_plan_invariant_acts=False,
        )
        plan = ExecutionPlan.uniform(AccurateProduct())
        executor.forward(tiny_dataset.test_images[:10], plan)
        shapes_after_10 = {k: b.shape for k, b in executor._act_buffers.items()}
        executor.forward(tiny_dataset.test_images[:3], plan)
        # smaller batch reuses a slice — no reallocation
        assert {k: b.shape for k, b in executor._act_buffers.items()} == shapes_after_10
        executor.forward(tiny_dataset.test_images[:14], plan)
        for key, buffer in executor._act_buffers.items():
            assert buffer.shape[0] >= shapes_after_10[key][0]
