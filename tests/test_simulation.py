"""Tests of the approximate inference executor, metrics and campaign machinery."""

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.perforated import PerforatedMultiplier
from repro.simulation.campaign import (
    TrainedModelCache,
    TrainingSettings,
    accuracy_sweep,
    experiment_dataset,
    train_reference_model,
)
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    LUTProduct,
    PerforatedProduct,
)
from repro.simulation.metrics import (
    OutputErrorStats,
    accuracy,
    accuracy_loss_percent,
    output_error_stats,
)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3, 4]), np.array([1, 2, 0, 4])) == 0.75

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_accuracy_loss_percent(self):
        assert accuracy_loss_percent(0.90, 0.88) == pytest.approx(2.0)
        assert accuracy_loss_percent(0.90, 0.92) == pytest.approx(-2.0)

    def test_output_error_stats(self, rng):
        ref = rng.normal(size=(10, 10))
        stats = output_error_stats(ref, ref)
        assert stats.mean == 0.0 and stats.rmse == 0.0
        shifted = output_error_stats(ref, ref - 1.0)
        assert shifted.mean == pytest.approx(1.0)
        assert shifted.variance == pytest.approx(0.0, abs=1e-12)
        assert isinstance(shifted, OutputErrorStats)

    def test_output_error_stats_shape_check(self, rng):
        with pytest.raises(ValueError):
            output_error_stats(np.zeros((2, 2)), np.zeros((3, 2)))


class TestProductModels:
    def test_perforated_from_config(self):
        from repro.core.accelerator_model import AcceleratorConfig

        assert isinstance(
            PerforatedProduct.from_config(AcceleratorConfig.accurate(64)), AccurateProduct
        )
        model = PerforatedProduct.from_config(AcceleratorConfig.make(64, 2))
        assert isinstance(model, PerforatedProduct)
        assert model.m == 2 and model.use_control_variate

    def test_names(self):
        assert PerforatedProduct(2, True).name == "perforated_m2+V"
        assert PerforatedProduct(2, False).name == "perforated_m2"
        assert "accurate" in LUTProduct(AccurateMultiplier()).name

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            PerforatedProduct(-1)
        with pytest.raises(ValueError):
            PerforatedProduct(8)

    def test_m_zero_degenerates_to_accurate(self, rng):
        """m=0 is valid and matches the accurate array, with and without V."""
        from repro.core.approx_conv import accurate_product_sums
        from repro.core.control_variate import ControlVariate

        acts = rng.integers(0, 256, size=(13, 9), dtype=np.uint8)
        weights = rng.integers(0, 256, size=(9, 5), dtype=np.uint8)
        cv = ControlVariate.from_weight_matrix(weights)
        reference = accurate_product_sums(acts, weights)
        for use_cv in (True, False):
            model = PerforatedProduct(0, use_control_variate=use_cv)
            sums = model.product_sums(acts, weights, cv)
            np.testing.assert_array_equal(np.asarray(sums), reference)
            kernel = model.compile(weights, cv)
            np.testing.assert_array_equal(np.asarray(kernel(acts)), reference)


class TestExecutionPlan:
    def test_uniform_and_override(self):
        base = ExecutionPlan.uniform(AccurateProduct())
        override = base.with_layer("conv1", PerforatedProduct(2))
        assert isinstance(base.model_for("conv1"), AccurateProduct)
        assert isinstance(override.model_for("conv1"), PerforatedProduct)
        assert isinstance(override.model_for("other"), AccurateProduct)
        # the original plan is unchanged
        assert "conv1" not in base.per_layer

    def test_from_config(self):
        from repro.core.accelerator_model import AcceleratorConfig

        plan = ExecutionPlan.from_config(AcceleratorConfig.make(32, 1, use_control_variate=False))
        model = plan.model_for("any")
        assert isinstance(model, PerforatedProduct)
        assert not model.use_control_variate


class TestApproximateExecutor:
    def test_accurate_plan_close_to_float_model(self, tiny_executor, trained_tiny_model, tiny_dataset):
        images = tiny_dataset.test_images[:16]
        float_logits = trained_tiny_model.forward(images)
        quant_logits = tiny_executor.forward(images, ExecutionPlan.uniform(AccurateProduct()))
        # 8-bit post-training quantization: logits agree to within a small error.
        assert np.abs(float_logits - quant_logits).max() < 0.5 * np.abs(float_logits).max() + 0.5

    def test_accurate_plan_preserves_accuracy(self, tiny_executor, trained_tiny_model, tiny_dataset):
        from repro.nn.training import evaluate_accuracy

        float_acc = evaluate_accuracy(
            trained_tiny_model, tiny_dataset.test_images, tiny_dataset.test_labels
        )
        quant_acc = accuracy(
            tiny_executor.predict(tiny_dataset.test_images, ExecutionPlan.uniform(AccurateProduct())),
            tiny_dataset.test_labels,
        )
        assert quant_acc >= float_acc - 0.12

    def test_lut_path_matches_analytic_path(self, tiny_executor, tiny_dataset):
        """Perforated LUT emulation and the analytical fast path agree."""
        images = tiny_dataset.test_images[:8]
        analytic = tiny_executor.forward(
            images, ExecutionPlan.uniform(PerforatedProduct(2, use_control_variate=False))
        )
        lut = tiny_executor.forward(
            images, ExecutionPlan.uniform(LUTProduct(PerforatedMultiplier(2)))
        )
        assert np.allclose(analytic, lut)

    def test_control_variate_improves_over_plain_perforation(
        self, tiny_executor, tiny_dataset
    ):
        images = tiny_dataset.test_images
        labels = tiny_dataset.test_labels
        acc_cv = accuracy(
            tiny_executor.predict(images, ExecutionPlan.uniform(PerforatedProduct(2, True))),
            labels,
        )
        acc_plain = accuracy(
            tiny_executor.predict(images, ExecutionPlan.uniform(PerforatedProduct(2, False))),
            labels,
        )
        assert acc_cv >= acc_plain

    def test_logit_error_reduced_by_control_variate(self, tiny_executor, tiny_dataset):
        images = tiny_dataset.test_images[:24]
        reference = tiny_executor.forward(images, ExecutionPlan.uniform(AccurateProduct()))
        with_cv = tiny_executor.forward(
            images, ExecutionPlan.uniform(PerforatedProduct(2, True))
        )
        without = tiny_executor.forward(
            images, ExecutionPlan.uniform(PerforatedProduct(2, False))
        )
        assert output_error_stats(reference, with_cv).rmse < output_error_stats(
            reference, without
        ).rmse

    def test_per_layer_plan(self, tiny_executor, tiny_dataset):
        layer = tiny_executor.mac_layer_names()[0]
        plan = ExecutionPlan.uniform(AccurateProduct()).with_layer(
            layer, PerforatedProduct(3, use_control_variate=False)
        )
        out = tiny_executor.forward(tiny_dataset.test_images[:4], plan)
        ref = tiny_executor.forward(
            tiny_dataset.test_images[:4], ExecutionPlan.uniform(AccurateProduct())
        )
        assert not np.allclose(out, ref)

    def test_weight_overrides(self, tiny_executor, tiny_dataset):
        layer = tiny_executor.mac_layer_names()[0]
        original = tiny_executor.quantized_weights(layer)
        zeroed = [np.zeros_like(codes) for codes in original]
        tiny_executor.set_weight_override(layer, zeroed)
        try:
            overridden = tiny_executor.forward(
                tiny_dataset.test_images[:4], ExecutionPlan.uniform(AccurateProduct())
            )
        finally:
            tiny_executor.clear_weight_overrides()
        restored = tiny_executor.forward(
            tiny_dataset.test_images[:4], ExecutionPlan.uniform(AccurateProduct())
        )
        reference = tiny_executor.forward(
            tiny_dataset.test_images[:4], ExecutionPlan.uniform(AccurateProduct())
        )
        assert not np.allclose(overridden, reference)
        assert np.allclose(restored, reference)

    def test_weight_override_validation(self, tiny_executor):
        layer = tiny_executor.mac_layer_names()[0]
        with pytest.raises(ValueError):
            tiny_executor.set_weight_override(layer, [])

    def test_mac_layer_names_match_model(self, tiny_executor, trained_tiny_model):
        assert tiny_executor.mac_layer_names() == [
            node.name for node in trained_tiny_model.conv_dense_nodes()
        ]

    def test_grouped_conv_model_executes(self, tiny_dataset, rng):
        """ShuffleNet-style grouped/depthwise convolutions run through the executor."""
        from repro.models.zoo import build_model

        model = build_model("shufflenet", num_classes=tiny_dataset.num_classes, rng=rng)
        executor = ApproximateExecutor(model, tiny_dataset.train_images[:32])
        out = executor.forward(
            tiny_dataset.test_images[:4], ExecutionPlan.uniform(PerforatedProduct(1))
        )
        assert out.shape == (4, tiny_dataset.num_classes)
        assert np.isfinite(out).all()


class TestCampaign:
    @pytest.fixture(scope="class")
    def small_dataset(self):
        return make_synthetic_cifar(
            SyntheticCifarConfig(num_classes=4, train_per_class=30, test_per_class=8, seed=5)
        )

    def test_train_reference_model(self, small_dataset):
        trained = train_reference_model(
            "vgg13", small_dataset, TrainingSettings(epochs=2, seed=1)
        )
        assert trained.name == "vgg13"
        assert 0.0 <= trained.float_accuracy <= 1.0

    def test_cache_round_trip(self, small_dataset, tmp_path):
        cache = TrainedModelCache(cache_dir=str(tmp_path))
        settings = TrainingSettings(epochs=1, seed=2)
        first = cache.load_or_train("vgg13", small_dataset, settings)
        second = cache.load_or_train("vgg13", small_dataset, settings)
        assert second.float_accuracy == pytest.approx(first.float_accuracy)
        x = small_dataset.test_images[:4]
        assert np.allclose(first.model.forward(x), second.model.forward(x))

    def test_cache_keyed_by_training_settings(self, small_dataset, tmp_path):
        """Changing hyper-parameters must retrain, not reuse a stale model."""
        import os

        cache = TrainedModelCache(cache_dir=str(tmp_path))
        settings = TrainingSettings(epochs=1, seed=2)
        cache.load_or_train("vgg13", small_dataset, settings)
        files_before = sorted(os.listdir(tmp_path))
        # Same (model, dataset, seed) but different epochs: distinct entry.
        more_epochs = TrainingSettings(epochs=2, seed=2)
        retrained = cache.load_or_train("vgg13", small_dataset, more_epochs)
        files_after = sorted(os.listdir(tmp_path))
        assert len(files_after) == len(files_before) + 2
        assert retrained.float_accuracy >= 0.0
        # Re-requesting either settings hits its own cached entry.
        assert sorted(os.listdir(tmp_path)) == files_after
        cache.load_or_train("vgg13", small_dataset, settings)
        cache.load_or_train("vgg13", small_dataset, more_epochs)
        assert sorted(os.listdir(tmp_path)) == files_after

    def test_cache_rejects_mismatched_meta(self, small_dataset, tmp_path):
        """Tampered / stale metadata triggers a retrain instead of a stale hit."""
        import json
        import os

        cache = TrainedModelCache(cache_dir=str(tmp_path))
        settings = TrainingSettings(epochs=1, seed=2)
        cache.load_or_train("vgg13", small_dataset, settings)
        meta_path = next(
            os.path.join(tmp_path, f) for f in os.listdir(tmp_path) if f.endswith(".json")
        )
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["settings"]["epochs"] = 99
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        reloaded = cache.load_or_train("vgg13", small_dataset, settings)
        with open(meta_path) as handle:
            repaired = json.load(handle)
        assert repaired["settings"]["epochs"] == 1
        assert 0.0 <= reloaded.float_accuracy <= 1.0

    def test_parallel_sweep_matches_serial(self, small_dataset, tmp_path):
        from repro.simulation.campaign import parallel_sweep

        cache = TrainedModelCache(cache_dir=str(tmp_path))
        trained = cache.load_or_train("vgg13", small_dataset, TrainingSettings(epochs=1, seed=3))
        kwargs = dict(perforations=(0, 2), max_eval_images=16)
        serial = accuracy_sweep([trained], {small_dataset.name: small_dataset}, **kwargs)
        parallel = parallel_sweep(
            [trained], {small_dataset.name: small_dataset}, max_workers=2, **kwargs
        )
        assert parallel.baselines == serial.baselines
        assert parallel.records == serial.records
        # m=0 cells are the accurate design: zero accuracy loss.
        assert parallel.lookup("vgg13", small_dataset.name, 0, True).accuracy_loss == 0.0
        assert parallel.lookup("vgg13", small_dataset.name, 0, False).accuracy_loss == 0.0

    def test_parallel_sweep_shared_memory_forced(
        self, small_dataset, tmp_path, monkeypatch
    ):
        """Shared-memory path forced on: results and error stats identical to
        the serial sweep, and no worker ever (re)trains a model."""
        import repro.simulation.campaign as campaign
        from repro.simulation.campaign import parallel_sweep

        cache = TrainedModelCache(cache_dir=str(tmp_path))
        settings = TrainingSettings(epochs=1, seed=3)
        trained = cache.load_or_train("vgg13", small_dataset, settings)
        datasets = {small_dataset.name: small_dataset}
        kwargs = dict(perforations=(1, 2), max_eval_images=16)
        serial = accuracy_sweep([trained], datasets, **kwargs)

        # Cache hit: a second load returns the stored model without training.
        def _no_training(*args, **kw):
            raise AssertionError("training ran after the model was already cached")

        monkeypatch.setattr(campaign, "train_reference_model", _no_training)
        reloaded = cache.load_or_train("vgg13", small_dataset, settings)
        assert reloaded.float_accuracy == trained.float_accuracy

        # Workers (fork start method) inherit the patched trainer: any retrain
        # inside the sweep would blow up the worker and fail the sweep.
        for max_workers in (1, 2):
            shared = parallel_sweep(
                [reloaded],
                datasets,
                max_workers=max_workers,
                use_shared_memory=True,
                **kwargs,
            )
            assert shared.baselines == serial.baselines
            assert shared.records == serial.records
            for record, expected in zip(shared.records, serial.records):
                assert record.accuracy_loss == expected.accuracy_loss

        # Cache-hit assertion: every cell of a model reuses one calibrated
        # executor — the worker builds it exactly once.
        from repro.runtime import worker

        store = campaign.publish_trained_models([reloaded])
        state: dict = {}
        try:
            worker.init_worker_state(state, store, datasets, 16, 128, None)
            specs = campaign._sweep_cell_specs([reloaded], (1, 2))
            assert len(specs) > 1
            for _, m, with_cv in specs:
                worker.eval_plan_cell(state, 0, campaign._spec_plan(m, with_cv))
            assert state["executor_builds"] == 1
        finally:
            state.clear()
            store.unlink()

    def test_publish_trained_models_zero_copy_views(self, small_dataset, tmp_path):
        """Attached models view one shared block read-only and predict
        identically to the originals."""
        from repro.simulation.campaign import publish_trained_models

        cache = TrainedModelCache(cache_dir=str(tmp_path))
        trained = cache.load_or_train("vgg13", small_dataset, TrainingSettings(epochs=1, seed=3))
        store = publish_trained_models([trained])
        try:
            assert store.nbytes_shared() > 0
            attached = store.attach()
            assert len(attached) == 1
            clone = attached[0]
            assert clone.name == trained.name
            assert clone.float_accuracy == trained.float_accuracy
            x = small_dataset.test_images[:4]
            np.testing.assert_array_equal(clone.model.forward(x), trained.model.forward(x))
            # Parameters are read-only views into the block, not copies.
            assert all(
                not p.flags.writeable and not p.flags.owndata
                for _, _, p in clone.model.parameters()
            )
            # attach() is idempotent per process.
            assert store.attach() is attached
        finally:
            del attached, clone
            store.unlink()

    def test_publish_trained_models_memmap_fallback(self, small_dataset, tmp_path):
        """Without POSIX shared memory the block degrades to a memmapped file."""
        import os

        from repro.simulation.campaign import publish_trained_models

        cache = TrainedModelCache(cache_dir=str(tmp_path))
        trained = cache.load_or_train("vgg13", small_dataset, TrainingSettings(epochs=1, seed=3))
        store = publish_trained_models([trained], prefer_shared_memory=False)
        try:
            assert store.kind == "memmap" and os.path.exists(store.name)
            clone = store.attach()[0]
            x = small_dataset.test_images[:4]
            np.testing.assert_array_equal(clone.model.forward(x), trained.model.forward(x))
        finally:
            del clone
            store.unlink()
        assert not os.path.exists(store.name)

    def test_plan_sweep_parity_across_execution_modes(self, small_dataset, tmp_path):
        """plan_sweep with prefix reuse + shared memory + workers is
        bit-identical to the serial no-reuse path (the acceptance criterion
        of the prefix-reuse PR)."""
        from repro.simulation.campaign import plan_sweep
        from repro.simulation.inference import (
            AccurateProduct,
            ExecutionPlan,
            PerforatedProduct,
        )

        cache = TrainedModelCache(cache_dir=str(tmp_path))
        trained = cache.load_or_train("vgg13", small_dataset, TrainingSettings(epochs=1, seed=3))
        names = [node.name for node in trained.model.conv_dense_nodes()]
        plans = [("baseline", ExecutionPlan.uniform(AccurateProduct()))]
        for depth in (0, 2, 4):
            for m in (1, 2):
                plan = ExecutionPlan.uniform(AccurateProduct())
                for name in names[depth:]:
                    plan = plan.with_layer(name, PerforatedProduct(m))
                plans.append((f"exact{depth}_m{m}", plan))
        datasets = {small_dataset.name: small_dataset}
        kwargs = dict(max_eval_images=16)
        reference = plan_sweep(
            [trained], datasets, plans, max_workers=1, reuse_prefix=False, **kwargs
        )
        assert [r.plan_label for r in reference] == [label for label, _ in plans]
        reused = plan_sweep([trained], datasets, plans, max_workers=1, **kwargs)
        parallel = plan_sweep([trained], datasets, plans, max_workers=2, **kwargs)
        shared = plan_sweep(
            [trained], datasets, plans, max_workers=1, use_shared_memory=True, **kwargs
        )
        assert reused == reference
        assert parallel == reference
        assert shared == reference

    def test_order_plan_cells_groups_shared_prefixes(self, small_dataset, tmp_path):
        from repro.simulation.campaign import order_plan_cells
        from repro.simulation.inference import (
            AccurateProduct,
            ExecutionPlan,
            PerforatedProduct,
        )

        cache = TrainedModelCache(cache_dir=str(tmp_path))
        trained = cache.load_or_train("vgg13", small_dataset, TrainingSettings(epochs=1, seed=3))
        names = [node.name for node in trained.model.conv_dense_nodes()]

        def exact_prefix(depth, m):
            plan = ExecutionPlan.uniform(AccurateProduct())
            for name in names[depth:]:
                plan = plan.with_layer(name, PerforatedProduct(m))
            return plan

        # deliberately interleaved input order
        plans = [
            ("deep_m1", exact_prefix(4, 1)),
            ("shallow_m1", exact_prefix(0, 1)),
            ("deep_m2", exact_prefix(4, 2)),
            ("shallow_m2", exact_prefix(0, 2)),
            ("baseline", ExecutionPlan.uniform(AccurateProduct())),
        ]
        cells = order_plan_cells([trained], plans)
        assert sorted(cells) == [(0, i) for i in range(len(plans))]
        schedule = [plans[plan_index][0] for _, plan_index in cells]
        # the two deep-prefix plans (and the baseline, which shares their
        # exact prefix) must be adjacent; shallow plans sort elsewhere
        deep_block = {"deep_m1", "deep_m2", "baseline"}
        positions = [i for i, label in enumerate(schedule) if label in deep_block]
        assert positions == list(range(min(positions), min(positions) + 3))

    def test_sweep_engine_backend_is_bit_identical(self, small_dataset, tmp_path):
        """The lowmem backend produces the exact same sweep as the default."""
        cache = TrainedModelCache(cache_dir=str(tmp_path))
        trained = cache.load_or_train("vgg13", small_dataset, TrainingSettings(epochs=1, seed=3))
        datasets = {small_dataset.name: small_dataset}
        kwargs = dict(perforations=(2,), max_eval_images=16)
        default = accuracy_sweep([trained], datasets, **kwargs)
        lowmem = accuracy_sweep([trained], datasets, engine_backend="lowmem", **kwargs)
        assert lowmem.records == default.records
        assert lowmem.baselines == default.baselines

    def test_accuracy_sweep_structure(self, small_dataset, tmp_path):
        cache = TrainedModelCache(cache_dir=str(tmp_path))
        trained = cache.load_or_train("vgg13", small_dataset, TrainingSettings(epochs=2, seed=3))
        result = accuracy_sweep(
            [trained],
            {small_dataset.name: small_dataset},
            perforations=(1, 2),
            max_eval_images=24,
        )
        assert len(result.records) == 4  # 2 m-values x {with, without} V
        record = result.lookup("vgg13", small_dataset.name, 1, True)
        assert record.baseline_accuracy >= 0
        assert np.isfinite(record.accuracy_loss)
        assert np.isfinite(result.average_loss(small_dataset.name, 1, True))
        with pytest.raises(LookupError):
            result.lookup("vgg13", small_dataset.name, 3, True)
        with pytest.raises(LookupError):
            result.average_loss(small_dataset.name, 3, True)

    def test_sweep_cv_beats_no_cv_on_average(self, small_dataset, tmp_path):
        cache = TrainedModelCache(cache_dir=str(tmp_path))
        trained = cache.load_or_train("vgg13", small_dataset, TrainingSettings(epochs=2, seed=3))
        result = accuracy_sweep(
            [trained], {small_dataset.name: small_dataset}, perforations=(2,), max_eval_images=32
        )
        assert result.average_loss(small_dataset.name, 2, True) <= result.average_loss(
            small_dataset.name, 2, False
        )

    def test_experiment_dataset_configs(self):
        ds10 = experiment_dataset(10, train_per_class=2)
        assert ds10.num_classes == 10
        ds100 = experiment_dataset(100, train_per_class=1)
        assert ds100.num_classes == 100
        with pytest.raises(ValueError):
            experiment_dataset(50)
