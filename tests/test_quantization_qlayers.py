"""Tests of the quantized linear-operation core."""

import numpy as np
import pytest

from repro.quantization.qlayers import QuantizedLinearOp
from repro.quantization.quantize import calibrate_minmax, quantize
from repro.quantization.schemes import QuantParams


def _make_op(rng, taps=20, filters=6, with_bias=True):
    weights = rng.normal(0, 0.4, size=(taps, filters))
    w_params = calibrate_minmax(weights)
    bias = rng.normal(size=filters) if with_bias else None
    op = QuantizedLinearOp(quantize(weights, w_params), w_params, bias)
    return op, weights, bias


class TestValidation:
    def test_weight_codes_must_be_uint8(self):
        with pytest.raises(TypeError):
            QuantizedLinearOp(np.zeros((4, 2), dtype=np.int64), QuantParams(1.0, 0))

    def test_weight_codes_must_be_2d(self):
        with pytest.raises(ValueError):
            QuantizedLinearOp(np.zeros(4, dtype=np.uint8), QuantParams(1.0, 0))

    def test_bias_shape_checked(self):
        with pytest.raises(ValueError):
            QuantizedLinearOp(
                np.zeros((4, 2), dtype=np.uint8), QuantParams(1.0, 0), bias=np.zeros(3)
            )

    def test_activation_shape_checked(self, rng):
        op, _, _ = _make_op(rng)
        with pytest.raises(ValueError):
            op.exact_product_sum(np.zeros((3, 5), dtype=np.uint8))

    def test_activation_dtype_checked(self, rng):
        op, _, _ = _make_op(rng)
        with pytest.raises(TypeError):
            op.exact_product_sum(np.zeros((3, op.taps), dtype=np.int32))

    def test_product_sum_shape_checked(self, rng):
        op, _, _ = _make_op(rng)
        acts = np.zeros((3, op.taps), dtype=np.uint8)
        params = QuantParams(1.0, 0)
        with pytest.raises(ValueError):
            op.output_real(acts, params, product_sum=np.zeros((3, op.filters + 1)))


class TestDequantizedOutput:
    def test_matches_float_matmul(self, rng):
        op, weights, bias = _make_op(rng)
        acts = rng.uniform(0, 1, size=(15, weights.shape[0]))
        a_params = calibrate_minmax(acts)
        act_codes = quantize(acts, a_params)
        out = op.output_real(act_codes, a_params)
        reference = acts @ weights + bias
        # Quantization error only: bounded by the quantization steps.
        tolerance = (
            weights.shape[0]
            * (op.weight_params.scale + a_params.scale)
            * max(np.abs(acts).max(), np.abs(weights).max())
        )
        assert np.abs(out - reference).max() < tolerance

    def test_without_bias(self, rng):
        op, weights, _ = _make_op(rng, with_bias=False)
        acts = rng.uniform(0, 1, size=(7, weights.shape[0]))
        a_params = calibrate_minmax(acts)
        out = op.output_real(quantize(acts, a_params), a_params)
        assert np.abs(out - acts @ weights).max() < 0.5

    def test_custom_product_sum_shifts_output(self, rng):
        op, weights, bias = _make_op(rng)
        acts = rng.uniform(0, 1, size=(5, weights.shape[0]))
        a_params = calibrate_minmax(acts)
        act_codes = quantize(acts, a_params)
        exact = op.exact_product_sum(act_codes)
        shifted = op.output_real(act_codes, a_params, product_sum=exact + 10)
        base = op.output_real(act_codes, a_params, product_sum=exact)
        expected_delta = 10 * op.weight_params.scale * a_params.scale
        assert np.allclose(shifted - base, expected_delta)

    def test_exact_product_sum_is_integer_matmul(self, rng):
        op, _, _ = _make_op(rng, taps=9, filters=3)
        act_codes = rng.integers(0, 256, size=(4, 9)).astype(np.uint8)
        expected = act_codes.astype(np.int64) @ op.weight_codes.astype(np.int64)
        assert np.array_equal(op.exact_product_sum(act_codes), expected)
