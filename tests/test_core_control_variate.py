"""Tests of the control variate and the closed-form error model (Section III)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.control_variate import (
    ControlVariate,
    optimal_control_constant,
    quantize_control_constant,
)
from repro.core.error_model import (
    convolution_error_stats,
    simulate_convolution_error,
    variance_reduction_factor,
)

weight_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(2, 64),
    elements=st.integers(0, 255),
)


class TestOptimalControlConstant:
    def test_is_the_mean(self, rng):
        weights = rng.integers(0, 256, size=50)
        assert optimal_control_constant(weights) == pytest.approx(weights.mean())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            optimal_control_constant(np.array([]))

    @given(weights=weight_arrays)
    @settings(max_examples=50, deadline=None)
    def test_mean_minimizes_corrected_variance(self, weights):
        """Eq. (11): C = E[W] minimizes sum_j (W_j - C)^2, hence Var(eps_G*)."""
        c_opt = optimal_control_constant(weights)
        best = convolution_error_stats(weights, 2, control_constant=c_opt).variance
        for delta in (-7.0, -1.0, 1.0, 7.0):
            other = convolution_error_stats(weights, 2, control_constant=c_opt + delta).variance
            assert best <= other + 1e-9

    def test_quantize_control_constant(self):
        assert quantize_control_constant(127.4) == 127
        assert quantize_control_constant(300.0) == 255
        assert quantize_control_constant(-3.0) == 0
        with pytest.raises(ValueError):
            quantize_control_constant(10.0, bits=0)


class TestControlVariateObject:
    def test_from_weight_matrix(self, rng):
        codes = rng.integers(0, 256, size=(36, 8))
        cv = ControlVariate.from_weight_matrix(codes, quantize=False)
        assert cv.n_filters == 8
        assert np.allclose(cv.constants, codes.mean(axis=0))

    def test_quantized_constants_are_integers(self, rng):
        codes = rng.integers(0, 256, size=(10, 4))
        cv = ControlVariate.from_weight_matrix(codes, quantize=True)
        assert np.allclose(cv.constants, np.round(cv.constants))
        assert cv.constants.max() <= 255

    def test_correction_shape_and_value(self):
        cv = ControlVariate(constants=np.array([2.0, 3.0]), quantized=False)
        correction = cv.correction(np.array([1, 4, 10]))
        assert correction.shape == (3, 2)
        assert np.allclose(correction, np.array([[2, 3], [8, 12], [20, 30]]))

    def test_memory_overhead(self):
        cv = ControlVariate(constants=np.zeros(64))
        assert cv.memory_overhead_bits() == 64 * 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ControlVariate(constants=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            ControlVariate.from_weight_matrix(np.zeros(5))


class TestConvolutionErrorStats:
    def test_eq3_without_control_variate(self):
        """E = E[x] sum W ; Var = Var(x) sum W^2 (eq. (3) specialised to perforation)."""
        weights = np.array([10.0, 20.0, 30.0])
        m = 2
        x = np.arange(1 << m)
        stats = convolution_error_stats(weights, m, use_control_variate=False)
        assert stats.mean == pytest.approx(x.mean() * weights.sum())
        assert stats.variance == pytest.approx(x.var() * (weights**2).sum())

    def test_eq12_mean_is_nullified(self, rng):
        weights = rng.integers(0, 256, size=40)
        stats = convolution_error_stats(weights, 3, use_control_variate=True)
        assert stats.mean == pytest.approx(0.0, abs=1e-9)

    def test_eq10_variance_formula(self, rng):
        weights = rng.integers(0, 256, size=25).astype(float)
        m = 2
        c = weights.mean()
        stats = convolution_error_stats(weights, m, use_control_variate=True)
        levels = 1 << m
        expected = (levels - 1) * (levels + 1) / 12.0 * ((weights - c) ** 2).sum()
        assert stats.variance == pytest.approx(expected)

    def test_identical_weights_give_zero_variance(self):
        stats = convolution_error_stats(np.full(9, 120.0), 3, use_control_variate=True)
        assert stats.variance == pytest.approx(0.0)
        assert variance_reduction_factor(np.full(9, 120.0), 3) == np.inf

    def test_m_zero_is_error_free(self, rng):
        weights = rng.integers(0, 256, size=10)
        for cv in (True, False):
            stats = convolution_error_stats(weights, 0, use_control_variate=cv)
            assert stats.mean == 0.0
            assert stats.variance == 0.0

    def test_variance_grows_with_m(self, rng):
        """Section III: the larger m, the larger the error variance."""
        weights = rng.integers(0, 256, size=30)
        variances = [
            convolution_error_stats(weights, m, use_control_variate=True).variance
            for m in (1, 2, 3, 4)
        ]
        assert variances == sorted(variances)

    @given(weights=weight_arrays, m=st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_control_variate_never_increases_variance(self, weights, m):
        with_cv = convolution_error_stats(weights, m, use_control_variate=True).variance
        without = convolution_error_stats(weights, m, use_control_variate=False).variance
        assert with_cv <= without + 1e-9

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            convolution_error_stats(np.array([]), 1)

    def test_std_property(self):
        stats = convolution_error_stats(np.array([1.0, 2.0]), 1, use_control_variate=False)
        assert stats.std == pytest.approx(np.sqrt(stats.variance))


class TestMonteCarloValidation:
    def test_simulation_matches_closed_form(self, rng):
        """Monte-Carlo convolution errors reproduce eqs. (3), (10), (12)."""
        weights = rng.integers(30, 220, size=64)
        m = 2
        for use_cv in (True, False):
            errors = simulate_convolution_error(
                weights, m, n_trials=20000, use_control_variate=use_cv, rng=rng
            )
            stats = convolution_error_stats(weights, m, use_control_variate=use_cv)
            assert errors.mean() == pytest.approx(stats.mean, abs=4 * stats.std / np.sqrt(20000) + 1e-9)
            assert errors.var() == pytest.approx(stats.variance, rel=0.1)

    def test_custom_control_constant(self, rng):
        weights = rng.integers(0, 256, size=16)
        errors = simulate_convolution_error(
            weights, 1, n_trials=500, control_constant=0.0, rng=rng
        )
        reference = simulate_convolution_error(
            weights, 1, n_trials=500, use_control_variate=False, rng=rng
        )
        # C = 0 means the control variate adds nothing.
        assert errors.var() == pytest.approx(reference.var(), rel=0.25)

    def test_empty_weights_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_convolution_error(np.array([]), 1, rng=rng)

    def test_variance_reduction_factor_positive(self, rng):
        weights = rng.integers(60, 200, size=100)
        factor = variance_reduction_factor(weights, 2)
        assert factor > 1.0
