"""Tests of the jobs layer (:mod:`repro.runtime.jobs`).

The acceptance criteria of the job-oriented re-architecture live here:

* **job-vs-direct parity** — plan sets submitted as jobs (and the Table III
  sweep rebuilt on the job API) are bit-exact with the engine's direct
  ``evaluate_plans`` and with :func:`~repro.simulation.campaign.
  parallel_sweep`;
* **service-level result cache** — duplicate cells across jobs from *any*
  client are cache hits: two concurrent clients submitting overlapping
  plan sets get bit-identical results, the overlap served from cache, with
  hit/miss/eviction counters in ``stats()``;
* **admission control** — a bounded queue rejects with reason
  ``queue_full``, the per-session in-flight cap with ``session_busy``, and
  rejections never corrupt counters;
* **sessions** — per-client seed streams are distinct and stable, and
  per-session ledgers land in disjoint namespaces;
* **graceful close** — ``close()`` with jobs still queued cancels them
  (state ``cancelled``), drains the dispatcher, and unlinks every
  shared-memory block: no leaked ``/dev/shm`` segments;
* **wire codec** — plans round-trip through JSON with identical
  fingerprints (perforation, control-variate flag, LUT bytes), so
  content-addressed cell keys survive transport.
"""

from __future__ import annotations

import json
import os
import threading
import time
from multiprocessing import shared_memory
from types import SimpleNamespace

import numpy as np
import pytest

from repro.dse.ledger import CampaignLedger
from repro.multipliers.library import MultiplierLibrary
from repro.runtime.jobs import (
    AdmissionError,
    JobManager,
    JobQueue,
    JobState,
    LocalJobClient,
    PlanCodecError,
    ResultCache,
    SessionError,
    decode_plan,
    decode_plans,
    encode_plan,
    encode_plans,
    sweep_over_jobs,
)
from repro.runtime.jobs.sessions import SessionRegistry
from repro.core.seeding import SeedBank
from repro.simulation.campaign import TrainedModel, parallel_sweep
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    LUTProduct,
    PerforatedProduct,
)

pytestmark = pytest.mark.runtime


@pytest.fixture(scope="module")
def trained(trained_tiny_model, tiny_dataset):
    return TrainedModel(
        name="vgg13",
        dataset_name=tiny_dataset.name,
        model=trained_tiny_model,
        float_accuracy=0.0,
    )


@pytest.fixture()
def manager(trained, tiny_dataset):
    mgr = JobManager([trained], {tiny_dataset.name: tiny_dataset})
    yield mgr
    mgr.close()


def _plans(trained, count: int, seed: int) -> list[ExecutionPlan]:
    rng = np.random.default_rng(seed)
    mac_names = [node.name for node in trained.model.conv_dense_nodes()]
    menu = [None, PerforatedProduct(1), PerforatedProduct(2), PerforatedProduct(3)]
    plans = [ExecutionPlan.uniform(AccurateProduct())]
    while len(plans) < count:
        plan = ExecutionPlan.uniform(AccurateProduct())
        for name in mac_names:
            choice = menu[int(rng.integers(0, len(menu)))]
            if choice is not None:
                plan = plan.with_layer(name, choice)
        plans.append(plan)
    return plans


class TestCodec:
    def test_plan_round_trip_preserves_fingerprints(self, trained):
        mac_names = tuple(
            node.name for node in trained.model.conv_dense_nodes()
        )
        lut = next(iter(MultiplierLibrary.synthetic_evoapprox())).multiplier
        plan = (
            ExecutionPlan.uniform(PerforatedProduct(2))
            .with_layer(mac_names[0], AccurateProduct())
            .with_layer(mac_names[1], PerforatedProduct(1, use_control_variate=False))
            .with_layer(mac_names[2], LUTProduct(lut))
        )
        decoded = decode_plan(encode_plan(plan))
        assert decoded.fingerprints(mac_names) == plan.fingerprints(mac_names)

    def test_perforated_m0_is_not_mistaken_for_accurate(self):
        plan = ExecutionPlan.uniform(PerforatedProduct(0))
        decoded = decode_plan(encode_plan(plan))
        assert decoded.fingerprints(("x",)) == plan.fingerprints(("x",))

    def test_plans_round_trip(self, trained):
        plans = _plans(trained, 4, seed=3)
        names = tuple(node.name for node in trained.model.conv_dense_nodes())
        for original, decoded in zip(plans, decode_plans(encode_plans(plans))):
            assert decoded.fingerprints(names) == original.fingerprints(names)

    def test_bad_payloads_raise_codec_errors(self):
        with pytest.raises(PlanCodecError):
            decode_plan({"default": {"kind": "warp-drive"}, "per_layer": {}})
        with pytest.raises(PlanCodecError):
            decode_plan([1, 2, 3])
        with pytest.raises(PlanCodecError):
            decode_plans({"not": "a list"})


class TestResultCache:
    def test_hit_miss_and_eviction_counters(self):
        cache = ResultCache(max_entries=2)
        assert cache.get("a") is None
        cache.put("a", 0.5)
        cache.put("b", 0.6)
        assert cache.get("a") == 0.5
        cache.put("c", 0.7)  # evicts "b" (LRU; "a" was refreshed)
        assert cache.get("b") is None
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 2


class TestSessions:
    def test_seed_streams_are_distinct_and_stable(self):
        registry = SessionRegistry(SeedBank(7))
        alice = registry.get_or_create("alice")
        bob = registry.get_or_create("bob")
        assert alice is registry.get_or_create("alice")
        assert alice.seeds.seed_for("jobs") != bob.seeds.seed_for("jobs")
        # Recreating the registry with the same root reproduces the streams.
        again = SessionRegistry(SeedBank(7)).get_or_create("alice")
        assert again.seeds.seed_for("jobs") == alice.seeds.seed_for("jobs")

    def test_ledger_namespaces_are_disjoint(self, tmp_path):
        registry = SessionRegistry(SeedBank(0), ledger_dir=str(tmp_path))
        alice = registry.get_or_create("alice")
        bob = registry.get_or_create("bob")
        alice.ledger.put("k", {"kind": "job-cell", "accuracy": 1.0})
        bob.ledger.put("k", {"kind": "job-cell", "accuracy": 0.0})
        fresh = CampaignLedger(path=str(tmp_path / "alice"))
        assert fresh.get("k")["accuracy"] == 1.0
        fresh = CampaignLedger(path=str(tmp_path / "bob"))
        assert fresh.get("k")["accuracy"] == 0.0

    def test_bad_session_ids_are_rejected(self):
        registry = SessionRegistry(SeedBank(0))
        with pytest.raises(SessionError):
            registry.get_or_create("../escape")
        with pytest.raises(SessionError):
            registry.get_or_create("")


class TestJobParity:
    def test_job_results_match_direct_evaluation(self, manager, trained):
        plans = _plans(trained, 5, seed=21)
        direct = manager.service.evaluate_plans(0, plans)
        with LocalJobClient(manager, own_manager=False) as client:
            job_id = client.submit_job(0, plans)
            view = client.wait(job_id, timeout=120)
        assert view["state"] == "done"
        assert view["accuracies"] == direct

    def test_sweep_over_jobs_matches_parallel_sweep(self, trained, tiny_dataset):
        perforations = (1, 2)
        reference = parallel_sweep(
            [trained], {tiny_dataset.name: tiny_dataset},
            perforations=perforations, max_workers=1,
        )
        manager = JobManager([trained], {tiny_dataset.name: tiny_dataset})
        with LocalJobClient(manager) as client:
            sweep, totals = sweep_over_jobs(client, perforations=perforations)
        assert sweep.baselines == reference.baselines
        for record, expected in zip(sweep.records, reference.records):
            assert record == expected
        assert totals["cells"] == 1 + 2 * len(perforations)
        assert totals["cache_misses"] == totals["cells"]
        assert totals["cache_hits"] == 0

    def test_within_job_duplicates_are_deduplicated(self, manager, trained):
        plan = ExecutionPlan.uniform(PerforatedProduct(2))
        accuracies = LocalJobClient(manager, own_manager=False)
        job_id = accuracies.submit_job(0, [plan, plan, plan])
        view = accuracies.wait(job_id, timeout=120)
        assert view["cache_misses"] == 1
        assert view["cache_hits"] == 2
        assert len(set(view["accuracies"])) == 1


class TestResultCacheAcrossClients:
    def test_concurrent_overlapping_clients_share_the_cache(
        self, trained, tiny_dataset
    ):
        """Two threads, overlapping plan sets: bit-identical accuracies and
        the overlap of whichever lands second served from cache."""
        manager = JobManager([trained], {tiny_dataset.name: tiny_dataset})
        shared = _plans(trained, 4, seed=5)
        views: dict[str, dict] = {}

        def submit(session: str) -> None:
            client = LocalJobClient(manager, own_manager=False)
            job_id = client.submit_job(0, shared, session=session)
            views[session] = client.wait(job_id, timeout=240)

        try:
            threads = [
                threading.Thread(target=submit, args=(name,))
                for name in ("alice", "bob")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert views["alice"]["accuracies"] == views["bob"]["accuracies"]
            stats = manager.stats()
            # The dispatcher serializes the two jobs, so exactly one of them
            # evaluated the 4 unique cells; the other took 4 cache hits.
            assert stats["cache"]["misses"] == len(shared)
            assert stats["cache"]["hits"] == len(shared)
            assert stats["jobs"]["completed"] == 2
            assert stats["sessions"]["alice"]["jobs_completed"] == 1
            assert stats["sessions"]["bob"]["jobs_completed"] == 1
        finally:
            manager.close()

    def test_duplicate_sweep_is_all_cache_hits(self, trained, tiny_dataset):
        manager = JobManager([trained], {tiny_dataset.name: tiny_dataset})
        with LocalJobClient(manager) as client:
            first, totals_first = sweep_over_jobs(client, perforations=(1, 2))
            second, totals_second = sweep_over_jobs(client, perforations=(1, 2))
        assert totals_first["cache_hits"] == 0
        assert totals_second["cache_hits"] == totals_second["cells"]
        assert second.baselines == first.baselines
        assert second.records == first.records


class TestAdmissionControl:
    def test_queue_full_and_session_busy_rejections(self, trained, tiny_dataset):
        # auto_start=False: no dispatcher, so queued jobs stay queued and
        # the admission bounds are exercised deterministically.
        manager = JobManager(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_queue_depth=2,
            max_inflight_per_session=1,
            auto_start=False,
        )
        plan = [ExecutionPlan.uniform(AccurateProduct())]
        try:
            manager.submit(0, plan, session="alice")
            with pytest.raises(AdmissionError) as busy:
                manager.submit(0, plan, session="alice")
            assert busy.value.reason == "session_busy"
            manager.submit(0, plan, session="bob")
            with pytest.raises(AdmissionError) as full:
                manager.submit(0, plan, session="carol")
            assert full.value.reason == "queue_full"
            stats = manager.stats()
            assert stats["jobs"]["rejected"] == 2
            assert stats["jobs"]["submitted"] == 2
        finally:
            manager.close()

    def test_rejected_submission_never_reuses_a_live_job_id(
        self, trained, tiny_dataset
    ):
        # A rejected submit must burn its minted ID: rolling the sequence
        # back would let the next accepted job overwrite a live one under
        # concurrent submits.
        manager = JobManager(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_inflight_per_session=1,
            auto_start=False,
        )
        plan = [ExecutionPlan.uniform(AccurateProduct())]
        try:
            first = manager.submit(0, plan, session="alice")
            with pytest.raises(AdmissionError):
                manager.submit(0, plan, session="alice")
            second = manager.submit(0, plan, session="bob")
            assert second.id != first.id
            assert second.id == "job-000003"  # ID 2 burned by the rejection
            assert manager.job(first.id) is first
            # `submitted` counts accepted jobs only, not minted IDs.
            assert manager.stats()["jobs"]["submitted"] == 2
        finally:
            manager.close()

    def test_queue_release_returns_the_inflight_slot(self):
        queue = JobQueue(max_depth=4, max_inflight_per_session=1)
        session = SessionRegistry(SeedBank(0)).get_or_create()
        queue.push(object(), session)
        assert session.inflight == 1
        with pytest.raises(AdmissionError):
            queue.push(object(), session)
        queue.release(session)
        assert session.inflight == 0
        queue.push(object(), session)  # slot is usable again
        queue.release(session)
        queue.release(session)  # over-release clamps at zero
        assert session.inflight == 0

    def test_queue_rejects_after_close(self):
        queue = JobQueue(max_depth=4)
        queue.close()
        session = SessionRegistry(SeedBank(0)).get_or_create()
        with pytest.raises(AdmissionError) as rejected:
            queue.push(object(), session)
        assert rejected.value.reason == "closed"


class TestPriorityScheduling:
    """Queue-ordering semantics: priority bands, FIFO within a band, and
    the deterministic starvation escape."""

    @staticmethod
    def _session():
        return SessionRegistry(SeedBank(0)).get_or_create()

    def test_fifo_preserved_within_a_priority_band(self):
        queue = JobQueue(max_depth=8)
        session = self._session()
        jobs = [SimpleNamespace(priority=0, tag=i) for i in range(5)]
        for job in jobs:
            queue.push(job, session)
        assert [queue.pop(0.1).tag for _ in jobs] == [0, 1, 2, 3, 4]

    def test_higher_priority_pops_first(self):
        queue = JobQueue(max_depth=8)
        session = self._session()
        for priority, tag in [(0, "a"), (1, "b"), (0, "c"), (2, "d"), (1, "e")]:
            queue.push(SimpleNamespace(priority=priority, tag=tag), session)
        # Band 2 first, then band 1 FIFO, then band 0 FIFO.
        assert [queue.pop(0.1).tag for _ in range(5)] == ["d", "b", "e", "a", "c"]

    def test_starvation_is_bounded_by_the_bypass_limit(self):
        queue = JobQueue(max_depth=16, starvation_limit=2)
        session = self._session()
        queue.push(SimpleNamespace(priority=0, tag="old"), session)
        for i in range(5):
            queue.push(SimpleNamespace(priority=1, tag=f"hi{i}"), session)
        # Two high-priority pops bypass the oldest job; the third pop must
        # serve it regardless of band.
        order = [queue.pop(0.1).tag for _ in range(6)]
        assert order == ["hi0", "hi1", "old", "hi2", "hi3", "hi4"]
        assert queue.stats()["starvation_pops"] == 1

    def test_drain_returns_arrival_order_across_bands(self):
        queue = JobQueue(max_depth=8)
        session = self._session()
        for priority, tag in [(2, "a"), (0, "b"), (1, "c")]:
            queue.push(SimpleNamespace(priority=priority, tag=tag), session)
        assert [job.tag for job in queue.drain()] == ["a", "b", "c"]
        assert queue.depth == 0

    def test_default_priority_knob_and_view(self, trained, tiny_dataset):
        manager = JobManager(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            default_priority=3,
            auto_start=False,
        )
        try:
            plan = [ExecutionPlan.uniform(AccurateProduct())]
            defaulted = manager.submit(0, plan)
            explicit = manager.submit(0, plan, session="bob", priority=-1)
            assert defaulted.priority == 3
            assert defaulted.view()["priority"] == 3
            assert explicit.view()["priority"] == -1
        finally:
            manager.close()

    def test_priority_and_deadline_validation(self, trained, tiny_dataset):
        manager = JobManager(
            [trained], {tiny_dataset.name: tiny_dataset}, auto_start=False
        )
        plan = [ExecutionPlan.uniform(AccurateProduct())]
        try:
            with pytest.raises(TypeError):
                manager.submit(0, plan, priority=True)
            with pytest.raises(TypeError):
                manager.submit(0, plan, priority="high")
            with pytest.raises(TypeError):
                manager.submit(0, plan, deadline_s="soon")
            with pytest.raises(ValueError):
                manager.submit(0, plan, deadline_s=0)
            with pytest.raises(ValueError):
                manager.submit(0, plan, deadline_s=-2.5)
        finally:
            manager.close()


class TestDeadlines:
    """Expired-in-queue vs expired-mid-run both end ``cancelled`` with
    reason ``deadline_exceeded`` — and the admission stats tell them apart."""

    def test_expired_in_queue_is_cancelled_before_running(
        self, trained, tiny_dataset
    ):
        manager = JobManager(
            [trained], {tiny_dataset.name: tiny_dataset}, auto_start=False
        )
        try:
            job = manager.submit(
                0,
                [ExecutionPlan.uniform(AccurateProduct())],
                deadline_s=0.01,
            )
            time.sleep(0.05)  # expire while the dispatcher is not running
            manager.start()
            assert job.wait(30)
            assert job.state is JobState.CANCELLED
            assert job.reason == "deadline_exceeded"
            view = job.view()
            assert view["state"] == "cancelled"
            assert view["reason"] == "deadline_exceeded"
            assert "queued" in view["error"]
            stats = manager.stats()
            assert stats["jobs"]["deadline_expired_queued"] == 1
            assert stats["jobs"]["deadline_expired_running"] == 0
            assert stats["jobs"]["cancelled"] == 1
            # Never ran: the cache saw no traffic at all.
            assert stats["cache"]["misses"] == 0
        finally:
            manager.close()

    def test_expired_mid_run_is_cancelled_but_results_are_cached(
        self, trained, tiny_dataset
    ):
        manager = JobManager(
            [trained], {tiny_dataset.name: tiny_dataset}, auto_start=False
        )
        try:
            evaluate = manager.service.evaluate_plans

            def slow_evaluate(model_index, plans):
                time.sleep(0.2)
                return evaluate(model_index, plans)

            manager.service.evaluate_plans = slow_evaluate
            plan = ExecutionPlan.uniform(PerforatedProduct(2))
            job = manager.submit(0, [plan], deadline_s=0.05)
            manager.start()
            assert job.wait(60)
            assert job.state is JobState.CANCELLED
            assert job.reason == "deadline_exceeded"
            assert "running" in job.view()["error"]
            stats = manager.stats()
            assert stats["jobs"]["deadline_expired_running"] == 1
            assert stats["jobs"]["deadline_expired_queued"] == 0
            # The evaluation was not wasted: the cell is in the cache, so a
            # deadline-free resubmission of the same plan is a pure hit.
            assert stats["cache"]["entries"] == 1
            redo = manager.submit(0, [plan])
            assert redo.wait(60)
            assert redo.state is JobState.DONE
            assert redo.cache_hits == 1
            assert redo.cache_misses == 0
        finally:
            manager.close()


class TestCachePersistence:
    def test_write_through_and_warm_load(self, tmp_path):
        cache = ResultCache(persist_dir=str(tmp_path))
        cache.put("k1", 0.25)
        cache.put("k2", 0.75)
        records = sorted(tmp_path.glob("*.json"))
        assert [record.stem for record in records] == ["k1", "k2"]
        assert json.loads(records[0].read_text()) == {
            "kind": "result-cache",
            "accuracy": 0.25,
        }
        warm = ResultCache(persist_dir=str(tmp_path))
        assert len(warm) == 2
        assert warm.loaded == 2
        assert warm.get("k1") == 0.25
        stats = warm.stats()
        assert stats["persist_path"] == str(tmp_path)
        assert stats["loaded"] == 2

    def test_eviction_trims_memory_but_keeps_the_disk_record(self, tmp_path):
        bounded = ResultCache(max_entries=1, persist_dir=str(tmp_path))
        bounded.put("a", 0.1)
        bounded.put("b", 0.2)  # evicts "a" from memory
        assert bounded.get("a") is None
        unbounded = ResultCache(persist_dir=str(tmp_path))
        assert unbounded.get("a") == 0.1
        assert unbounded.get("b") == 0.2

    def test_restarted_manager_serves_the_same_sweep_fully_cached(
        self, trained, tiny_dataset, tmp_path
    ):
        persist = str(tmp_path / "cache")
        cold = JobManager(
            [trained], {tiny_dataset.name: tiny_dataset}, cache_persist_dir=persist
        )
        with LocalJobClient(cold) as client:
            first, totals_cold = sweep_over_jobs(client, perforations=(1, 2))
        assert totals_cold["cache_misses"] == totals_cold["cells"]
        # "Restart the daemon": a fresh manager over the same persist dir.
        warm = JobManager(
            [trained], {tiny_dataset.name: tiny_dataset}, cache_persist_dir=persist
        )
        with LocalJobClient(warm) as client:
            stats = client.stats()
            assert stats["cache"]["loaded"] == totals_cold["cells"]
            second, totals_warm = sweep_over_jobs(client, perforations=(1, 2))
            stats = client.stats()
        assert totals_warm["cache_hits"] == totals_warm["cells"]
        assert totals_warm["cache_misses"] == 0
        assert stats["cache"]["hit_ratio"] == 1.0
        assert second.baselines == first.baselines
        assert second.records == first.records


class TestGracefulClose:
    def test_close_cancels_queued_jobs_and_unlinks_stores(
        self, trained, tiny_dataset
    ):
        manager = JobManager(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            use_shared_memory=True,
            auto_start=False,
        )
        plan = [ExecutionPlan.uniform(AccurateProduct())]
        # One direct evaluation forces the publish-once path (the store
        # handles exist only once the engine has published), then jobs
        # pile up unserved because the dispatcher never started.
        manager.service.evaluate_plans(0, plan)
        queued = [manager.submit(0, plan, session=f"s{i}") for i in range(3)]
        handles = manager.service.shared_store_handles()
        assert handles, "service published no shared blocks"
        manager.close()
        for job in queued:
            assert job.state is JobState.CANCELLED
            assert manager.job(job.id).view()["state"] == "cancelled"
        for kind, name in handles:
            if kind == "shm":
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)
            else:
                assert not os.path.exists(name)
        stats = manager.stats()
        assert stats["jobs"]["cancelled"] == 3

    def test_close_is_idempotent_and_submit_after_close_rejects(self, manager):
        manager.close()
        manager.close()
        with pytest.raises(AdmissionError) as rejected:
            manager.submit(0, [ExecutionPlan.uniform(AccurateProduct())])
        assert rejected.value.reason == "closed"


class TestStatsSchema:
    def test_manager_stats_schema(self, manager):
        stats = manager.stats()
        assert stats["schema"] == "repro-runtime-stats/v1.1"
        assert {"requested_workers", "workers"} <= set(stats["engine"])
        assert {"submitted", "completed", "rejected", "depth"} <= set(stats["jobs"])
        assert {"hits", "misses", "evictions", "hit_ratio"} <= set(stats["cache"])
        assert isinstance(stats["sessions"], dict)

    def test_session_ledger_records_job_cells(self, trained, tiny_dataset, tmp_path):
        manager = JobManager(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            ledger_dir=str(tmp_path),
        )
        try:
            with LocalJobClient(manager, own_manager=False) as client:
                job_id = client.submit_job(
                    0, [ExecutionPlan.uniform(PerforatedProduct(1))], session="alice"
                )
                client.wait(job_id, timeout=120)
        finally:
            manager.close()
        # One <plan_key>.json record in the session's own namespace.
        records = list((tmp_path / "alice").glob("*.json"))
        assert len(records) == 1
        payload = json.loads(records[0].read_text())
        assert payload["kind"] == "job-cell"
        assert isinstance(payload["accuracy"], float)
