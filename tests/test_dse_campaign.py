"""End-to-end tests of the DSE campaign engine and its acceptance criteria.

The heavyweight criteria of the subsystem live here:

* the greedy campaign's minimum-energy point meets the loss budget and
  beats the all-accurate design on energy;
* every accuracy the campaign reports is **bit-exact** with the equivalent
  hand-enumerated :func:`repro.simulation.campaign.plan_sweep`;
* killing and re-running a campaign with ``resume=True`` performs **zero
  duplicate plan evaluations** (everything replays from the ledger);
* NSGA-II is deterministic under a fixed seed;
* exhaustive search reproduces the brute-force front on a small space.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import (
    CampaignLedger,
    PlanEvaluator,
    SearchSpace,
    get_strategy,
    run_campaign,
)
from repro.dse.pareto import ParetoFront, ParetoPoint
from repro.dse.strategies import SearchStrategy
from repro.simulation.campaign import TrainedModel, plan_sweep

pytestmark = pytest.mark.dse

MAX_LOSS = 0.5
CALIBRATION_IMAGES = 64


@pytest.fixture(scope="module")
def trained(trained_tiny_model, tiny_dataset):
    return TrainedModel(
        name="vgg13",
        dataset_name=tiny_dataset.name,
        model=trained_tiny_model,
        float_accuracy=0.0,
    )


def _greedy_campaign(trained, tiny_dataset, **kwargs):
    return run_campaign(
        trained,
        tiny_dataset,
        strategy="greedy",
        max_loss=MAX_LOSS,
        calibration_images=CALIBRATION_IMAGES,
        array_size=64,
        **kwargs,
    )


@pytest.fixture(scope="module")
def greedy_result(trained, tiny_dataset, tmp_path_factory):
    ledger_dir = tmp_path_factory.mktemp("dse-ledger")
    result = _greedy_campaign(trained, tiny_dataset, ledger=CampaignLedger(str(ledger_dir)))
    return result, ledger_dir


class TestGreedyAcceptance:
    def test_min_energy_point_meets_loss_budget(self, greedy_result):
        result, _ = greedy_result
        best = result.best()
        assert best is not None
        assert best.accuracy_loss <= MAX_LOSS

    def test_min_energy_point_beats_accurate_energy(self, greedy_result):
        result, _ = greedy_result
        best = result.best()
        assert best.energy_nj < result.accurate_energy_nj
        assert result.energy_reduction_percent() > 0

    def test_front_is_nondominated(self, greedy_result):
        result, _ = greedy_result
        points = result.front.points()
        for a in points:
            assert not any(b.dominates(a) for b in points if b is not a)

    def test_accuracies_bit_exact_with_hand_enumerated_plan_sweep(
        self, greedy_result, trained, tiny_dataset
    ):
        """Every campaign accuracy equals the plan_sweep value for that plan."""
        result, _ = greedy_result
        space = SearchSpace.build(trained.model, tiny_dataset.image_shape, array_size=64)
        sampled = [
            p for p in result.points if "assignment" in p.meta and not p.meta.get("external")
        ]
        # The full point set is large; the front plus a deterministic slice
        # of the evaluated points is plenty to pin bit-exactness.
        chosen = {p.label: p for p in result.front.points()}
        for point in sampled[:: max(1, len(sampled) // 8)]:
            chosen.setdefault(point.label, point)
        labeled_plans = [
            (label, space.plan(point.meta["assignment"]))
            for label, point in chosen.items()
        ]
        records = plan_sweep(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            labeled_plans,
            calibration_images=CALIBRATION_IMAGES,
            max_workers=1,
        )
        sweep_acc = {r.plan_label: r.accuracy for r in records}
        for label, point in chosen.items():
            assert sweep_acc[label] == point.accuracy  # bit-exact, no tolerance

    def test_resume_performs_zero_duplicate_evaluations(
        self, greedy_result, trained, tiny_dataset
    ):
        first, ledger_dir = greedy_result
        resumed = _greedy_campaign(
            trained,
            tiny_dataset,
            ledger=CampaignLedger(str(ledger_dir)),
            resume=True,
        )
        assert resumed.stats["evaluations"] == 0
        assert resumed.stats["ledger_replays"] == first.stats["evaluations"]
        assert resumed.front.points() == first.front.points()
        assert resumed.baseline_accuracy == first.baseline_accuracy

    def test_interrupted_campaign_resumes_without_rework(
        self, trained, tiny_dataset, tmp_path
    ):
        """A budget-killed campaign resumes: replays everything, only new
        plans are evaluated, and the union converges to the full result."""
        ledger = CampaignLedger(str(tmp_path))
        partial = _greedy_campaign(
            trained, tiny_dataset, ledger=ledger, budget_evals=10
        )
        assert partial.stats["evaluations"] <= 10
        resumed = _greedy_campaign(
            trained,
            tiny_dataset,
            ledger=CampaignLedger(str(tmp_path)),
            resume=True,
        )
        # Every previously evaluated plan came from the ledger...
        assert resumed.stats["ledger_replays"] == partial.stats["evaluations"]
        # ... and the resumed run never re-evaluated one of them: fresh
        # evaluations and replays partition the point set.
        assert (
            resumed.stats["ledger_replays"] + resumed.stats["evaluations"]
            == resumed.stats["points"]
        )


class TestBudgetAndDedup:
    def test_budget_caps_fresh_evaluations(self, trained, tiny_dataset):
        result = _greedy_campaign(trained, tiny_dataset, budget_evals=5)
        assert result.stats["evaluations"] <= 5

    def test_budget_must_cover_the_baseline(self, trained, tiny_dataset):
        with pytest.raises(ValueError):
            _greedy_campaign(trained, tiny_dataset, budget_evals=0)

    def test_duplicate_assignments_scored_once(self, trained, tiny_dataset):
        class DuplicateStrategy(SearchStrategy):
            name = "duplicate-probe"

            def search(self, ctx):
                step = (1,) + (0,) * (ctx.space.num_layers - 1)
                first = ctx.score([step, step])
                second = ctx.score([step])
                assert first[0] is first[1] is second[0]

        result = run_campaign(
            trained,
            tiny_dataset,
            strategy=DuplicateStrategy(),
            max_loss=MAX_LOSS,
            calibration_images=CALIBRATION_IMAGES,
            array_size=64,
        )
        # accurate + the single stepped plan; duplicates only bump the counter.
        assert result.stats["evaluations"] == 2
        assert result.stats["dedup_hits"] == 2


class TestNsga2:
    def _run(self, trained, tiny_dataset, seed: int):
        return run_campaign(
            trained,
            tiny_dataset,
            strategy=get_strategy("nsga2", population=8, generations=2),
            max_loss=MAX_LOSS,
            budget_evals=40,
            calibration_images=CALIBRATION_IMAGES,
            rng=np.random.default_rng(seed),
            array_size=64,
        )

    def test_seeded_runs_are_identical(self, trained, tiny_dataset):
        a = self._run(trained, tiny_dataset, seed=123)
        b = self._run(trained, tiny_dataset, seed=123)
        assert a.front.points() == b.front.points()
        assert a.stats["evaluations"] == b.stats["evaluations"]

    def test_respects_budget_and_keeps_accurate_anchor(self, trained, tiny_dataset):
        result = self._run(trained, tiny_dataset, seed=7)
        assert result.stats["evaluations"] <= 40
        # The all-accurate anchor is always evaluated first.
        labels = {p.label for p in result.points}
        accurate_label = "-".join(["A"] * 9)
        assert any(label == accurate_label for label in labels)


class TestExhaustive:
    def test_matches_brute_force_front(self, trained, tiny_dataset):
        layers = ["s0_c0_conv", "s0_c1_conv", "classifier"]
        space = SearchSpace.build(
            trained.model,
            tiny_dataset.image_shape,
            perforations=(2,),
            include_no_cv=False,
            layers=layers,
        )
        assert space.size() == 8
        result = run_campaign(
            trained,
            tiny_dataset,
            strategy="exhaustive",
            max_loss=MAX_LOSS,
            space=space,
            calibration_images=CALIBRATION_IMAGES,
        )
        assert result.stats["evaluations"] == space.size()

        # Brute force through a fresh evaluator (same measurement setup).
        evaluator = PlanEvaluator(
            trained, tiny_dataset, calibration_images=CALIBRATION_IMAGES
        )
        assignments = list(space.enumerate_assignments())
        accuracies = evaluator.evaluate([space.plan(a) for a in assignments])
        expected = ParetoFront()
        baseline = accuracies[assignments.index((0, 0, 0))]
        for assignment, acc in zip(assignments, accuracies):
            expected.add(
                ParetoPoint(
                    label=space.label(assignment),
                    energy_nj=space.energy_nj(assignment),
                    accuracy=acc,
                    accuracy_loss=100.0 * (baseline - acc),
                )
            )
        assert result.front.points() == expected.points()


    def test_unbudgeted_exhaustive_on_huge_space_rejected(self, trained, tiny_dataset):
        with pytest.raises(ValueError, match="needs an evaluation budget"):
            run_campaign(
                trained,
                tiny_dataset,
                strategy="exhaustive",
                max_loss=MAX_LOSS,
                calibration_images=CALIBRATION_IMAGES,
            )


class TestBaselineStrategies:
    def test_ours_fixed_contributes_external_point(self, trained, tiny_dataset):
        result = run_campaign(
            trained,
            tiny_dataset,
            strategy="ours-fixed",
            max_loss=MAX_LOSS,
            calibration_images=CALIBRATION_IMAGES,
            array_size=64,
        )
        external = [p for p in result.points if p.meta.get("external")]
        assert len(external) == 1
        assert external[0].label == "ours"
        assert external[0].energy_nj > 0
        # One-call techniques spend no campaign evaluations beyond the anchor.
        assert result.stats["evaluations"] == 1
