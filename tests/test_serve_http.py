"""Tests of the HTTP transport layer (:mod:`repro.runtime.server`).

The daemon contract lives here:

* **endpoint contract** — ``/healthz``, ``/stats``, ``/models``,
  ``POST /jobs`` + ``GET /jobs/<id>`` speak the documented JSON shapes,
  and error paths return the documented statuses (404 unknown model/job,
  400 malformed plans, 429 admission rejections with a machine-readable
  reason);
* **served-vs-local parity** — jobs submitted over HTTP through
  :class:`~repro.runtime.jobs.client.HttpJobClient` return accuracies
  bit-identical to the in-process engine, and a DSE campaign driven by a
  :class:`~repro.runtime.jobs.client.RemotePlanEvaluator` produces the
  exact front of a local campaign with the same measurement setup;
* **cross-client caching over the wire** — a duplicate HTTP submission is
  served from the daemon's result cache, visible in ``/stats``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.dse import run_campaign
from repro.runtime.jobs import (
    AdmissionError,
    HttpJobClient,
    JobClientError,
    JobManager,
    LocalJobClient,
    RemotePlanEvaluator,
    encode_plans,
    sweep_over_jobs,
)
from repro.runtime.server import JobServer
from repro.simulation.campaign import TrainedModel, parallel_sweep
from repro.simulation.inference import AccurateProduct, ExecutionPlan, PerforatedProduct

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def trained(trained_tiny_model, tiny_dataset):
    return TrainedModel(
        name="vgg13",
        dataset_name=tiny_dataset.name,
        model=trained_tiny_model,
        float_accuracy=0.0,
    )


@pytest.fixture(scope="module")
def server(trained, tiny_dataset):
    manager = JobManager([trained], {tiny_dataset.name: tiny_dataset})
    srv = JobServer(manager)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown_and_close()
    thread.join(timeout=10)


@pytest.fixture()
def client(server):
    return HttpJobClient(server.url, poll_interval=0.01)


class TestEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["models"] == 1
        assert payload["uptime_s"] >= 0

    def test_models_descriptors(self, client, trained, tiny_dataset):
        infos = client.models()
        assert len(infos) == 1
        info = infos[0]
        assert info["name"] == trained.name
        assert info["dataset"] == tiny_dataset.name
        assert info["mac_layer_names"]
        assert len(info["context_key"]) == 64

    def test_stats_schema_over_the_wire(self, client):
        stats = client.stats()
        assert stats["schema"] == "repro-runtime-stats/v1.1"
        assert {"engine", "jobs", "cache", "sessions"} <= set(stats)

    def test_unknown_job_is_404(self, client):
        with pytest.raises(JobClientError) as error:
            client.job("job-999999")
        assert error.value.status == 404

    def test_unknown_model_is_404(self, client):
        with pytest.raises(JobClientError) as error:
            client.submit_job("lenet9000", [ExecutionPlan.uniform(AccurateProduct())])
        assert error.value.status == 404

    def test_boolean_model_index_is_rejected(self, server):
        # bool subclasses int: `true` must not be accepted as index 1 (or,
        # with one hosted model, silently rejected for the wrong reason).
        request = urllib.request.Request(
            f"{server.url}/jobs",
            data=json.dumps({"model_index": True, "plans": []}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(request)
        assert error.value.code == 404
        body = json.loads(error.value.read().decode())
        assert "model index" in body["error"]

    def test_unreachable_daemon_is_a_client_error(self):
        # Connection refused (no HTTP response at all) must surface as
        # JobClientError with status None, not leak a raw URLError.
        client = HttpJobClient("http://127.0.0.1:9", request_timeout=2.0)
        with pytest.raises(JobClientError) as error:
            client.healthz()
        assert error.value.status is None
        assert "cannot reach" in str(error.value)

    def test_bad_plan_payload_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/jobs",
            data=json.dumps(
                {"model_index": 0, "plans": [{"default": {"kind": "warp-drive"}}]}
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(request)
        assert error.value.code == 400

    def test_empty_plans_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/jobs",
            data=json.dumps({"model_index": 0, "plans": []}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(request)
        assert error.value.code == 400

    def test_non_json_body_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/jobs",
            data=b"perforate all the layers",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(request)
        assert error.value.code == 400

    def test_unknown_endpoint_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(f"{server.url}/teapot")
        assert error.value.code == 404

    def test_priority_and_deadline_round_trip(self, client):
        job_id = client.submit_job(
            0,
            [ExecutionPlan.uniform(AccurateProduct())],
            session="prio",
            priority=2,
            deadline_s=120.0,
        )
        view = client.wait(job_id, timeout=240)
        assert view["priority"] == 2
        assert view["deadline_s"] == 120.0
        assert view["reason"] is None

    def test_bad_priority_and_deadline_are_400(self, server):
        plans = encode_plans([ExecutionPlan.uniform(AccurateProduct())])
        for payload in (
            {"model_index": 0, "plans": plans, "priority": "high"},
            {"model_index": 0, "plans": plans, "priority": True},
            {"model_index": 0, "plans": plans, "deadline_s": "soon"},
            {"model_index": 0, "plans": plans, "deadline_s": -1},
        ):
            request = urllib.request.Request(
                f"{server.url}/jobs",
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(request)
            assert error.value.code == 400, payload


@pytest.mark.runtime
class TestServedParity:
    def test_http_job_matches_in_process_engine(
        self, server, client, trained
    ):
        plans = [
            ExecutionPlan.uniform(AccurateProduct()),
            ExecutionPlan.uniform(PerforatedProduct(1)),
            ExecutionPlan.uniform(PerforatedProduct(2, use_control_variate=False)),
        ]
        direct = server.manager.service.evaluate_plans(0, plans)
        job_id = client.submit_job(0, plans, session="parity")
        view = client.wait(job_id, timeout=240)
        assert view["accuracies"] == direct

    def test_served_sweep_matches_parallel_sweep(
        self, client, trained, tiny_dataset
    ):
        reference = parallel_sweep(
            [trained], {tiny_dataset.name: tiny_dataset},
            perforations=(1, 2), max_workers=1,
        )
        sweep, _totals = sweep_over_jobs(
            client, perforations=(1, 2), session="sweep-http"
        )
        assert sweep.baselines == reference.baselines
        assert sweep.records == reference.records

    def test_duplicate_http_submission_hits_the_cache(self, client):
        plans = [ExecutionPlan.uniform(PerforatedProduct(3))]
        first = client.wait(client.submit_job(0, plans, session="dup"), timeout=240)
        second = client.wait(client.submit_job(0, plans, session="dup"), timeout=240)
        assert second["accuracies"] == first["accuracies"]
        assert second["cache_hits"] == 1
        assert second["cache_misses"] == 0

    def test_remote_campaign_front_equals_local(
        self, client, trained, tiny_dataset
    ):
        kwargs = dict(
            strategy="greedy",
            max_loss=5.0,
            budget_evals=4,
            array_size=64,
            perforations=(1, 2),
        )
        local = run_campaign(trained, tiny_dataset, **kwargs)
        evaluator = RemotePlanEvaluator(client, trained.name, session="dse-http")
        remote = run_campaign(trained, tiny_dataset, evaluator=evaluator, **kwargs)
        assert remote.baseline_accuracy == local.baseline_accuracy
        local_points = [
            (p.label, p.energy_nj, p.accuracy) for p in local.front.points()
        ]
        remote_points = [
            (p.label, p.energy_nj, p.accuracy) for p in remote.front.points()
        ]
        assert remote_points == local_points
        # The remote campaign's ledger keys live under the server-reported
        # context digest — identical to the local measurement setup.
        assert remote.stats["context_key"] == local.stats["context_key"]


class TestAdmissionOverTheWire:
    def test_429_maps_back_to_admission_error(self, trained, tiny_dataset):
        manager = JobManager(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_queue_depth=2,
            max_inflight_per_session=1,
            auto_start=False,
        )
        srv = JobServer(manager)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            client = HttpJobClient(srv.url)
            plans = [ExecutionPlan.uniform(AccurateProduct())]
            client.submit_job(0, plans, session="alice")
            with pytest.raises(AdmissionError) as busy:
                client.submit_job(0, plans, session="alice")
            assert busy.value.reason == "session_busy"
            client.submit_job(0, plans, session="bob")
            with pytest.raises(AdmissionError) as full:
                client.submit_job(0, plans, session="carol")
            assert full.value.reason == "queue_full"
        finally:
            srv.shutdown_and_close()
            thread.join(timeout=10)

    def test_cancelled_job_reported_over_http(self, trained, tiny_dataset):
        manager = JobManager(
            [trained], {tiny_dataset.name: tiny_dataset}, auto_start=False
        )
        srv = JobServer(manager)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            client = HttpJobClient(srv.url, poll_interval=0.01)
            job_id = client.submit_job(
                0, [ExecutionPlan.uniform(AccurateProduct())], session="alice"
            )
            manager.close()
            view = client.job(job_id)
            assert view["state"] == "cancelled"
        finally:
            srv.shutdown_and_close()
            thread.join(timeout=10)
