"""Tests of the unified evaluation runtime (:mod:`repro.runtime`).

The acceptance criteria of the subsystem live here:

* **service-vs-serial parity** — randomized plan sets scored through an
  :class:`~repro.runtime.service.EvaluationService` are bit-exact with the
  in-process :meth:`~repro.dse.evaluator.PlanEvaluator.evaluate` and with
  :func:`~repro.simulation.campaign.plan_sweep`, across multiple engine
  backends;
* **graceful shutdown** — a forced worker failure (and a
  ``KeyboardInterrupt`` on the serial path) still drains the workers and
  unlinks every shared-memory block: no leaked ``/dev/shm`` segments;
* **parallel DSE campaigns** — ``run_campaign(workers=N)`` produces a
  Pareto front identical (same points, bit-exact accuracies) to the
  serial campaign, and shares ledger records with it (resume performs
  zero duplicate evaluations);
* **multi-model sessions** — one service hosting several models serves
  cells of all of them, bit-exactly.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.shared_store import SharedArrayStore
from repro.dse import (
    CampaignLedger,
    PlanEvaluator,
    ServicePlanEvaluator,
    get_strategy,
    run_campaign,
)
from repro.runtime import (
    EvaluationService,
    contiguous_chunks,
    resolve_worker_count,
    schedule_cells,
)
from repro.simulation.campaign import TrainedModel, plan_sweep
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    PerforatedProduct,
    ProductModel,
)

pytestmark = pytest.mark.runtime


class ExplodingProduct(ProductModel):
    """Product model whose evaluation always fails — forces a worker failure.

    Module-level so it pickles into pool workers; the failure happens at
    product-sum time, i.e. inside a worker process on the pool path.
    """

    def product_sums(self, act_codes, weight_codes, control_variate):
        raise RuntimeError("forced worker failure")

    def fingerprint(self) -> tuple:
        return ("exploding",)


class InterruptingProduct(ProductModel):
    """Product model raising KeyboardInterrupt mid-batch (serial path only)."""

    def product_sums(self, act_codes, weight_codes, control_variate):
        raise KeyboardInterrupt

    def fingerprint(self) -> tuple:
        return ("interrupting",)


@pytest.fixture(scope="module")
def trained(trained_tiny_model, tiny_dataset):
    return TrainedModel(
        name="vgg13",
        dataset_name=tiny_dataset.name,
        model=trained_tiny_model,
        float_accuracy=0.0,
    )


def _random_plans(trained, count: int, seed: int) -> list[ExecutionPlan]:
    """Randomized per-layer plan set (the shapes a DSE batch produces)."""
    rng = np.random.default_rng(seed)
    mac_names = [node.name for node in trained.model.conv_dense_nodes()]
    menu = [
        None,  # accurate
        PerforatedProduct(1),
        PerforatedProduct(2),
        PerforatedProduct(2, use_control_variate=False),
        PerforatedProduct(3),
    ]
    plans = [ExecutionPlan.uniform(AccurateProduct())]
    while len(plans) < count:
        plan = ExecutionPlan.uniform(AccurateProduct())
        for name in mac_names:
            choice = menu[int(rng.integers(0, len(menu)))]
            if choice is not None:
                plan = plan.with_layer(name, choice)
        plans.append(plan)
    return plans


def _assert_no_leaked_stores(handles: list[tuple[str, str]]) -> None:
    """Every published block must be gone after close()."""
    assert handles, "service published no shared blocks"
    for kind, name in handles:
        if kind == "shm":
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        else:
            assert not os.path.exists(name)


class TestServiceParity:
    @pytest.mark.parametrize("engine_backend", ["numpy", "lowmem"])
    def test_service_bit_exact_with_evaluator_and_plan_sweep(
        self, trained, tiny_dataset, engine_backend
    ):
        """Randomized plan sets: service == in-process evaluator == plan_sweep."""
        plans = _random_plans(trained, count=6, seed=11)
        datasets = {tiny_dataset.name: tiny_dataset}
        kwargs = dict(
            max_eval_images=24, calibration_images=32, engine_backend=engine_backend
        )
        with EvaluationService(
            [trained], datasets, max_workers=2, use_shared_memory=True, **kwargs
        ) as service:
            via_service = service.evaluate_plans(0, plans)
        serial = PlanEvaluator(trained, tiny_dataset, **kwargs).evaluate(plans)
        swept = plan_sweep(
            [trained],
            datasets,
            [(f"p{i}", plan) for i, plan in enumerate(plans)],
            max_workers=1,
            **kwargs,
        )
        assert via_service == serial  # bit-exact, no tolerance
        assert via_service == [record.accuracy for record in swept]

    def test_service_evaluator_drop_in_matches_plan_evaluator(
        self, trained, tiny_dataset
    ):
        """ServicePlanEvaluator mirrors PlanEvaluator: accuracies, context
        key (ledger compatibility) and MAC layer names."""
        plans = _random_plans(trained, count=4, seed=3)
        kwargs = dict(max_eval_images=24, calibration_images=32)
        serial = PlanEvaluator(trained, tiny_dataset, **kwargs)
        with EvaluationService(
            [trained], {tiny_dataset.name: tiny_dataset}, max_workers=2, **kwargs
        ) as service:
            backed = ServicePlanEvaluator(service, 0)
            assert backed.context_key() == serial.context_key()
            assert backed.mac_layer_names() == serial.mac_layer_names()
            assert backed.evaluate(plans) == serial.evaluate(plans)
            assert backed.evaluations == serial.evaluations == len(plans)

    def test_multi_model_session(self, trained, tiny_dataset):
        """One service hosting several models serves cells of all of them."""
        second = TrainedModel(
            name="vgg13-bis",
            dataset_name=tiny_dataset.name,
            model=trained.model,
            float_accuracy=0.0,
        )
        plans = _random_plans(trained, count=3, seed=7)
        cells = [(index, plan) for index in (0, 1) for plan in plans]
        kwargs = dict(max_eval_images=24, calibration_images=32)
        with EvaluationService(
            [trained, second],
            {tiny_dataset.name: tiny_dataset},
            max_workers=2,
            use_shared_memory=True,
            **kwargs,
        ) as service:
            assert service.model_index("vgg13-bis") == 1
            accuracies = service.evaluate_cells(cells)
        expected = PlanEvaluator(trained, tiny_dataset, **kwargs).evaluate(plans)
        assert accuracies == expected + expected  # both hosted models agree

    def test_work_stealing_chunks_stay_bit_exact_and_input_ordered(
        self, trained, tiny_dataset
    ):
        """Oversubscribed cost-balanced chunking (chunks_per_worker=3, the
        work-stealing shape) changes only *where* cells run: accuracies are
        bit-exact with the in-process evaluator and returned in submission
        order, and the measured chunk wall-clocks feed the cost model."""
        plans = _random_plans(trained, count=9, seed=29)
        kwargs = dict(max_eval_images=24, calibration_images=32)
        with EvaluationService(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_workers=2,
            chunks_per_worker=3,
            use_shared_memory=True,
            **kwargs,
        ) as service:
            assert service.stats()["engine"]["chunks_per_worker"] == 3
            stolen = service.evaluate_plans(0, plans)
            stats = service.stats()
        serial = PlanEvaluator(trained, tiny_dataset, **kwargs).evaluate(plans)
        assert stolen == serial  # bit-exact AND input-ordered
        # Every finished chunk reported a wall-clock into the cost model.
        assert stats["schema"] == "repro-runtime-stats/v1.1"
        assert stats["engine"]["cost_model_observations"] > 0
        assert stats["engine"]["cost_model_seconds_per_unit"] > 0.0

    def test_empty_and_single_cell_batches(self, trained, tiny_dataset):
        with EvaluationService(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_workers=1,
            max_eval_images=8,
            calibration_images=16,
        ) as service:
            assert service.evaluate_cells([]) == []
            only = service.evaluate_plans(
                0, [ExecutionPlan.uniform(PerforatedProduct(2))]
            )
            assert len(only) == 1 and 0.0 <= only[0] <= 1.0


class TestServiceLifecycle:
    def test_close_is_idempotent_and_rejects_new_work(self, trained, tiny_dataset):
        service = EvaluationService(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_workers=1,
            max_eval_images=8,
            calibration_images=16,
            use_shared_memory=True,
        )
        service.start()
        handles = service.shared_store_handles()
        assert service.nbytes_shared() > 0
        service.close()
        service.close()  # idempotent
        _assert_no_leaked_stores(handles)
        with pytest.raises(RuntimeError):
            service.submit([(0, ExecutionPlan.uniform(AccurateProduct()))])
        with pytest.raises(RuntimeError):
            service.start()

    def test_validation_errors(self, trained, tiny_dataset):
        datasets = {tiny_dataset.name: tiny_dataset}
        with pytest.raises(ValueError, match="positive integer"):
            EvaluationService([trained], datasets, max_workers=0)
        with pytest.raises(ValueError, match="at least one trained model"):
            EvaluationService([], datasets)
        with pytest.raises(ValueError, match="no dataset published"):
            EvaluationService([trained], {})
        with EvaluationService(
            [trained], datasets, max_workers=1, max_eval_images=8
        ) as service:
            with pytest.raises(IndexError):
                service.evaluate_plans(5, [ExecutionPlan.uniform(AccurateProduct())])
            with pytest.raises(KeyError):
                service.model_index("resnet44")

    def test_forced_worker_failure_propagates_and_unlinks(
        self, trained, tiny_dataset
    ):
        """A worker dying mid-batch surfaces the error; close() still drains
        the pool and unlinks every shared block (no /dev/shm leak)."""
        poison = ExecutionPlan.uniform(AccurateProduct()).with_layer(
            trained.model.conv_dense_nodes()[0].name, ExplodingProduct()
        )
        healthy = ExecutionPlan.uniform(PerforatedProduct(2))
        service = EvaluationService(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_workers=2,
            max_eval_images=8,
            calibration_images=16,
            use_shared_memory=True,
        )
        try:
            service.start()
            handles = service.shared_store_handles()
            with pytest.raises(RuntimeError, match="forced worker failure"):
                service.evaluate_plans(0, [healthy, poison])
        finally:
            service.close()
        _assert_no_leaked_stores(handles)
        # The pool survives a clean close after the failure: a fresh service
        # can publish into shared memory again (names never collided).
        with EvaluationService(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_workers=1,
            max_eval_images=8,
            calibration_images=16,
        ) as fresh:
            assert fresh.evaluate_plans(0, [healthy])

    def test_failed_batch_reraises_original_error_not_cancellation(
        self, trained, tiny_dataset
    ):
        """Collecting a failed batch twice re-raises the *original* failure.

        The first ``results()`` cancels the batch's remaining futures; a
        second call used to surface their ``CancelledError`` and mask the
        root cause.  The batch now caches the first failure and re-raises
        that exact exception on every later collection.
        """
        poison = ExecutionPlan.uniform(AccurateProduct()).with_layer(
            trained.model.conv_dense_nodes()[0].name, ExplodingProduct()
        )
        healthy = ExecutionPlan.uniform(PerforatedProduct(2))
        with EvaluationService(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_workers=2,
            max_eval_images=8,
            calibration_images=16,
        ) as service:
            batch = service.submit([(0, plan) for plan in (healthy, poison)])
            with pytest.raises(RuntimeError, match="forced worker failure") as first:
                batch.results()
            with pytest.raises(RuntimeError, match="forced worker failure") as again:
                batch.results()
            assert again.value is first.value  # cached, not a CancelledError

    def test_keyboard_interrupt_in_sweep_unlinks_stores(
        self, trained, tiny_dataset, monkeypatch
    ):
        """KeyboardInterrupt mid-sweep still tears the service down: every
        published block is unlinked on the way out."""
        unlinked: list[SharedArrayStore] = []
        original = SharedArrayStore.unlink

        def tracking_unlink(self):
            unlinked.append(self)
            return original(self)

        monkeypatch.setattr(SharedArrayStore, "unlink", tracking_unlink)
        poison = ExecutionPlan.uniform(AccurateProduct()).with_layer(
            trained.model.conv_dense_nodes()[0].name, InterruptingProduct()
        )
        with pytest.raises(KeyboardInterrupt):
            plan_sweep(
                [trained],
                {tiny_dataset.name: tiny_dataset},
                [("poison", poison)],
                max_workers=1,
                use_shared_memory=True,  # serial path, publish forced on
                max_eval_images=8,
                calibration_images=16,
            )
        # Both blocks (models + datasets) released despite the interrupt.
        assert len(unlinked) >= 2
        for store in unlinked:
            if store.kind == "shm":
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=store.name)
            else:
                assert not os.path.exists(store.name)


class TestParallelCampaign:
    def test_workers_produce_identical_front_and_share_ledger(
        self, trained, tiny_dataset, tmp_path
    ):
        """run_campaign(workers=2) == workers=1: same Pareto points with
        bit-exact accuracies, and the parallel path writes ledger records
        the serial path replays verbatim (context keys match)."""
        kwargs = dict(
            strategy="greedy",
            max_loss=0.5,
            budget_evals=10,
            max_eval_images=24,
            calibration_images=32,
            array_size=64,
        )
        serial = run_campaign(
            trained,
            tiny_dataset,
            ledger=CampaignLedger(str(tmp_path / "serial")),
            workers=1,
            **kwargs,
        )
        parallel = run_campaign(
            trained,
            tiny_dataset,
            ledger=CampaignLedger(str(tmp_path / "parallel")),
            workers=2,
            **kwargs,
        )
        assert parallel.front.points() == serial.front.points()
        assert parallel.baseline_accuracy == serial.baseline_accuracy
        assert parallel.stats["evaluations"] == serial.stats["evaluations"]
        # The request is visible verbatim; the effective pool size is the
        # request clamped to the schedulable CPUs (degrade-to-serial: on a
        # 1-CPU host the "parallel" campaign runs the serial path).
        assert parallel.stats["requested_workers"] == 2
        assert parallel.stats["workers"] == resolve_worker_count(2)
        # Ledger compatibility: a serial resume over the parallel run's
        # ledger replays every parallel record — the context keys of both
        # evaluators are identical.
        resumed = run_campaign(
            trained,
            tiny_dataset,
            ledger=CampaignLedger(str(tmp_path / "parallel")),
            workers=1,
            resume=True,
            **kwargs,
        )
        assert resumed.stats["ledger_replays"] == parallel.stats["evaluations"]

    def test_external_multi_model_service_backs_campaigns(
        self, trained, tiny_dataset
    ):
        """Sequential campaigns share one externally managed service pool."""
        second = TrainedModel(
            name="vgg13-bis",
            dataset_name=tiny_dataset.name,
            model=trained.model,
            float_accuracy=0.0,
        )
        kwargs = dict(
            strategy="greedy",
            max_loss=0.5,
            budget_evals=6,
            max_eval_images=24,
            calibration_images=32,
            array_size=64,
        )
        with EvaluationService(
            [trained, second],
            {tiny_dataset.name: tiny_dataset},
            max_workers=2,
            max_eval_images=24,
            calibration_images=32,
        ) as service:
            first = run_campaign(trained, tiny_dataset, service=service, **kwargs)
            bis = run_campaign(second, tiny_dataset, service=service, **kwargs)
            assert service.batches_submitted >= 2
        assert service.closed
        # Identical model + dataset: the campaigns must agree bit-exactly.
        assert first.front.points() == bis.front.points()

    def test_nsga2_pipelined_breeding_front_identical_to_serial(
        self, trained, tiny_dataset
    ):
        """NSGA-II with pipelined breeding (sub-batches scored while the
        next ones breed) lands on the identical front at any worker count:
        the candidate stream and every accuracy are bit-exact vs serial."""
        kwargs = dict(
            max_loss=0.5,
            budget_evals=24,
            max_eval_images=24,
            calibration_images=32,
            array_size=64,
        )
        serial = run_campaign(
            trained,
            tiny_dataset,
            strategy=get_strategy("nsga2", population=6, generations=2),
            rng=np.random.default_rng(5),
            workers=1,
            **kwargs,
        )
        # An explicit external service exercises the true pool path even on
        # a 1-CPU host (the degrade-to-serial clamp applies to workers=N
        # requests, not to a caller-managed service).
        with EvaluationService(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_workers=2,
            max_eval_images=24,
            calibration_images=32,
        ) as service:
            pooled = run_campaign(
                trained,
                tiny_dataset,
                strategy=get_strategy("nsga2", population=6, generations=2),
                rng=np.random.default_rng(5),
                service=service,
                **kwargs,
            )
        assert pooled.front.points() == serial.front.points()
        assert pooled.stats["evaluations"] == serial.stats["evaluations"]
        assert pooled.baseline_accuracy == serial.baseline_accuracy

    def test_invalid_workers_rejected(self, trained, tiny_dataset):
        with pytest.raises(ValueError, match="positive integer"):
            run_campaign(trained, tiny_dataset, workers=0, array_size=64)

    def test_external_service_rejects_conflicting_knobs(self, trained, tiny_dataset):
        """Knobs that would silently diverge from the external service's
        measurement setup are rejected loudly instead of ignored."""
        kwargs = dict(strategy="greedy", max_loss=0.5, budget_evals=2, array_size=64)
        with EvaluationService(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_workers=1,
            max_eval_images=24,
            calibration_images=32,
        ) as service:
            with pytest.raises(ValueError, match="conflict"):
                run_campaign(
                    trained,
                    tiny_dataset,
                    service=service,
                    max_eval_images=8,  # != the service's 24
                    calibration_images=32,
                    **kwargs,
                )
            with pytest.raises(ValueError, match="eval_images"):
                run_campaign(
                    trained,
                    tiny_dataset,
                    service=service,
                    max_eval_images=24,
                    calibration_images=32,
                    eval_images=tiny_dataset.test_images[:8],
                    eval_labels=tiny_dataset.test_labels[:8],
                    **kwargs,
                )


class TestScheduling:
    def test_schedule_cells_groups_models_and_is_stable(self, trained):
        plans = _random_plans(trained, count=5, seed=2)
        mac_names = {
            0: tuple(n.name for n in trained.model.conv_dense_nodes()),
            1: tuple(n.name for n in trained.model.conv_dense_nodes()),
        }
        cells = [(index, plan) for plan in plans for index in (1, 0)]
        order = schedule_cells(cells, mac_names)
        assert sorted(order) == list(range(len(cells)))
        models_in_order = [cells[i][0] for i in order]
        assert models_in_order == sorted(models_in_order)
        # Identical plans keep submission order within a model (stable sort).
        duplicates = [(0, plans[0]), (0, plans[0])]
        dup_order = schedule_cells(duplicates, mac_names)
        assert dup_order == [0, 1]

    def test_contiguous_chunks_cover_schedule_in_order(self):
        schedule = list(range(17))
        for max_chunks in (1, 2, 3, 5, 17, 40):
            chunks = contiguous_chunks(schedule, max_chunks)
            assert sum(chunks, []) == schedule
            assert len(chunks) <= max_chunks
        assert contiguous_chunks([], 4) == []
        with pytest.raises(ValueError):
            contiguous_chunks(schedule, 0)
