"""Tests of the Fig. 5 techniques (ours + the three state-of-the-art baselines)."""

import numpy as np
import pytest

from repro.baselines.alwann import AlwannBaseline, tune_weights
from repro.baselines.base import TechniqueResult, evaluate_plan_accuracy
from repro.baselines.ours import ControlVariateTechnique
from repro.baselines.reconfigurable import ReconfigurableBaseline
from repro.baselines.weight_oriented import WeightOrientedBaseline, WeightOrientedProduct
from repro.core.control_variate import ControlVariate
from repro.hardware.area_power import array_cost
from repro.core.accelerator_model import AcceleratorConfig
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.library import MultiplierLibrary
from repro.multipliers.perforated import PerforatedMultiplier
from repro.multipliers.truncated import TruncatedMultiplier
from repro.simulation.inference import AccurateProduct, ExecutionPlan


@pytest.fixture(scope="module")
def library():
    return MultiplierLibrary.synthetic_evoapprox(seed=4, n_evolved=3)


@pytest.fixture(scope="module")
def eval_data(tiny_dataset):
    return tiny_dataset.test_images[:48], tiny_dataset.test_labels[:48]


class TestWeightTuning:
    def test_identity_for_accurate_multiplier(self, rng):
        codes = rng.integers(0, 256, size=(9, 4)).astype(np.uint8)
        tuned = tune_weights(codes, AccurateMultiplier())
        assert np.array_equal(tuned, codes)

    def test_reduces_expected_error(self, rng):
        """Tuned weights never increase the mean absolute product error."""
        mult = TruncatedMultiplier(weight_bits=2, activation_bits=0)
        codes = rng.integers(0, 256, size=(30, 3)).astype(np.uint8)
        acts = rng.integers(0, 256, size=2000)
        lut = mult.build_lut()

        def mean_error(weight_codes):
            w = weight_codes.astype(np.int64).reshape(-1)
            return np.abs(
                lut[w[:, None], acts[None, :]] - codes.astype(np.int64).reshape(-1)[:, None] * acts[None, :]
            ).mean()

        tuned = tune_weights(codes, mult)
        assert mean_error(tuned) <= mean_error(codes) + 1e-9

    def test_range_validation(self):
        with pytest.raises(ValueError):
            tune_weights(np.array([300]), AccurateMultiplier())

    def test_respects_search_radius(self, rng):
        codes = rng.integers(5, 250, size=(10, 2)).astype(np.uint8)
        tuned = tune_weights(codes, TruncatedMultiplier(2, 0), search_radius=2)
        assert np.abs(tuned.astype(int) - codes.astype(int)).max() <= 2

    def test_activation_distribution_used(self, rng):
        codes = rng.integers(0, 256, size=(6, 2)).astype(np.uint8)
        acts = rng.integers(0, 32, size=500)
        tuned = tune_weights(codes, TruncatedMultiplier(1, 1), activation_codes=acts)
        assert tuned.shape == codes.shape


class TestWeightOrientedProduct:
    def test_threshold_zero_means_all_conservative(self, rng):
        acts = rng.integers(0, 256, size=(7, 12))
        weights = rng.integers(0, 256, size=(12, 5))
        cv = ControlVariate.from_weight_matrix(weights)
        product = WeightOrientedProduct(m_low=0, m_high=2, threshold=0, compensate_mean=False)
        assert np.array_equal(product.product_sums(acts, weights, cv), acts @ weights)

    def test_threshold_max_means_all_aggressive(self, rng):
        from repro.core.approx_conv import perforated_product_sums

        acts = rng.integers(0, 256, size=(7, 12))
        weights = rng.integers(0, 256, size=(12, 5))
        cv = ControlVariate.from_weight_matrix(weights)
        product = WeightOrientedProduct(m_low=2, m_high=2, threshold=256, compensate_mean=False)
        assert np.array_equal(
            product.product_sums(acts, weights, cv),
            perforated_product_sums(acts, weights, 2),
        )

    def test_mean_compensation_reduces_bias(self, rng):
        acts = rng.integers(0, 256, size=(400, 24))
        weights = rng.integers(0, 256, size=(24, 3))
        cv = ControlVariate.from_weight_matrix(weights)
        exact = acts @ weights
        plain = WeightOrientedProduct(1, 2, threshold=128, compensate_mean=False)
        comp = WeightOrientedProduct(1, 2, threshold=128, compensate_mean=True)
        bias_plain = np.abs((exact - plain.product_sums(acts, weights, cv)).mean())
        bias_comp = np.abs((exact - comp.product_sums(acts, weights, cv)).mean())
        assert bias_comp < bias_plain

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightOrientedProduct(3, 2, 10)
        with pytest.raises(ValueError):
            WeightOrientedProduct(0, 2, 300)

    def test_mode_masks(self, rng):
        weights = np.array([[10, 200], [150, 90]])
        product = WeightOrientedProduct(0, 2, threshold=100)
        assert np.array_equal(product.mode_masks(weights), np.array([[True, False], [False, True]]))


class TestTechniques:
    def test_ours_technique(self, tiny_executor, eval_data):
        technique = ControlVariateTechnique(m=2, array_size=32)
        result = technique.apply(tiny_executor, *eval_data)
        assert isinstance(result, TechniqueResult)
        assert result.extra_cycles_per_layer == 1
        accurate_power = array_cost(AcceleratorConfig.accurate(32)).power_mw
        assert result.array_power_mw < accurate_power
        assert result.accuracy_loss_percent < 20.0

    def test_alwann_selects_feasible_multiplier(self, tiny_executor, eval_data, library):
        technique = AlwannBaseline(library, array_size=32, max_accuracy_drop=0.05)
        result = technique.apply(tiny_executor, *eval_data)
        assert result.technique == "alwann"
        assert result.extra_cycles_per_layer == 0
        assert result.baseline_accuracy - result.accuracy <= 0.05 + 0.1
        assert "multiplier" in result.details

    def test_alwann_impossible_budget_falls_back_to_accurate(
        self, tiny_executor, eval_data, library
    ):
        technique = AlwannBaseline(
            library, array_size=32, max_accuracy_drop=-1.0, apply_weight_tuning=False
        )
        result = technique.apply(tiny_executor, *eval_data)
        assert result.details["multiplier"] == "accurate"
        accurate_power = array_cost(AcceleratorConfig.accurate(32)).power_mw
        assert result.array_power_mw == pytest.approx(accurate_power, rel=1e-6)

    def test_weight_oriented_within_budget(self, tiny_executor, eval_data):
        technique = WeightOrientedBaseline(array_size=32, max_accuracy_drop=0.05)
        result = technique.apply(tiny_executor, *eval_data)
        assert result.technique == "weight_oriented"
        assert result.baseline_accuracy - result.accuracy <= 0.05 + 0.1
        assert "configuration" in result.details

    def test_reconfigurable_assignment(self, tiny_executor, eval_data):
        technique = ReconfigurableBaseline(array_size=32, max_accuracy_drop=0.05)
        result = technique.apply(tiny_executor, *eval_data)
        assert result.technique == "reconfigurable"
        assignment = result.details["assignment"]
        assert set(assignment) == set(tiny_executor.mac_layer_names())
        assert all(m in (0, 1, 2) for m in assignment.values())

    def test_reconfigurable_validation(self):
        with pytest.raises(ValueError):
            ReconfigurableBaseline(accuracy_levels=(0,))

    def test_ordering_ours_saves_most_power(self, tiny_executor, eval_data, library):
        """Our technique's array power is the lowest among the four techniques
        (the driver of the Fig. 5 energy ordering)."""
        ours = ControlVariateTechnique(m=2, array_size=32).apply(tiny_executor, *eval_data)
        alwann = AlwannBaseline(library, array_size=32, max_accuracy_drop=0.02).apply(
            tiny_executor, *eval_data
        )
        woa = WeightOrientedBaseline(array_size=32, max_accuracy_drop=0.02).apply(
            tiny_executor, *eval_data
        )
        reconf = ReconfigurableBaseline(array_size=32, max_accuracy_drop=0.02).apply(
            tiny_executor, *eval_data
        )
        assert ours.array_power_mw < min(
            alwann.array_power_mw, woa.array_power_mw, reconf.array_power_mw
        )

    def test_evaluate_plan_accuracy_helper(self, tiny_executor, eval_data):
        acc = evaluate_plan_accuracy(
            tiny_executor, ExecutionPlan.uniform(AccurateProduct()), *eval_data
        )
        assert 0.0 <= acc <= 1.0
