"""Tests of the approximate product-sum paths and the accelerator config."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator_model import AcceleratorConfig
from repro.core.approx_conv import (
    ApproximationMode,
    accurate_product_sums,
    lut_product_sums,
    perforated_product_sums,
    product_sums,
)
from repro.core.control_variate import ControlVariate
from repro.multipliers.lut import build_lut
from repro.multipliers.perforated import PerforatedMultiplier


@pytest.fixture
def operands(rng):
    acts = rng.integers(0, 256, size=(23, 40), dtype=np.int64)
    weights = rng.integers(0, 256, size=(40, 11), dtype=np.int64)
    return acts, weights


class TestAccurateProductSums:
    def test_is_matmul(self, operands):
        acts, weights = operands
        assert np.array_equal(accurate_product_sums(acts, weights), acts @ weights)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            accurate_product_sums(np.zeros((3, 4)), np.zeros((5, 2)))
        with pytest.raises(ValueError):
            accurate_product_sums(np.zeros(4), np.zeros((4, 2)))


class TestPerforatedProductSums:
    def test_equals_per_element_lut_without_cv(self, operands):
        """The analytical fast path is bit-identical to the LUT emulation."""
        acts, weights = operands
        for m in (1, 2, 3):
            fast = perforated_product_sums(acts, weights, m)
            lut = lut_product_sums(acts, weights, build_lut(PerforatedMultiplier(m)))
            assert np.array_equal(fast, lut)

    def test_error_decomposition(self, operands):
        """exact - approx = sum_j W_j x_j per output (eq. (2) + eq. (5))."""
        acts, weights = operands
        m = 2
        x = acts & 3
        expected_error = x @ weights
        approx = perforated_product_sums(acts, weights, m)
        assert np.array_equal(acts @ weights - approx, expected_error)

    def test_control_variate_correction_value(self, operands):
        acts, weights = operands
        m = 2
        cv = ControlVariate.from_weight_matrix(weights, quantize=False)
        corrected = perforated_product_sums(acts, weights, m, cv)
        x_sums = (acts & 3).sum(axis=1)
        expected = perforated_product_sums(acts, weights, m) + np.outer(x_sums, cv.constants)
        assert np.allclose(corrected, expected)

    def test_quantized_constants_give_integer_sums(self, operands):
        acts, weights = operands
        cv = ControlVariate.from_weight_matrix(weights, quantize=True)
        out = perforated_product_sums(acts, weights, 1, cv)
        assert out.dtype == np.int64

    def test_cv_reduces_error_variance(self, operands):
        acts, weights = operands
        m = 3
        exact = acts @ weights
        cv = ControlVariate.from_weight_matrix(weights, quantize=False)
        err_with = exact - perforated_product_sums(acts, weights, m, cv)
        err_without = exact - perforated_product_sums(acts, weights, m)
        assert err_with.var() < err_without.var()
        assert abs(err_with.mean()) < abs(err_without.mean())

    def test_filter_count_mismatch_rejected(self, operands):
        acts, weights = operands
        cv = ControlVariate(constants=np.zeros(3))
        with pytest.raises(ValueError):
            perforated_product_sums(acts, weights, 1, cv)

    def test_invalid_m_rejected(self, operands):
        acts, weights = operands
        with pytest.raises(ValueError):
            perforated_product_sums(acts, weights, 8)

    @given(m=st.integers(1, 7), patches=st.integers(1, 8), taps=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_m_zero_bits_never_increase_result(self, m, patches, taps):
        rng = np.random.default_rng(m * 1000 + patches * 10 + taps)
        acts = rng.integers(0, 256, size=(patches, taps))
        weights = rng.integers(0, 256, size=(taps, 3))
        approx = perforated_product_sums(acts, weights, m)
        assert (approx <= acts @ weights).all()


class TestLutProductSums:
    def test_chunking_consistency(self, operands):
        acts, weights = operands
        lut = build_lut(PerforatedMultiplier(2))
        small = lut_product_sums(acts, weights, lut, chunk_patches=3)
        large = lut_product_sums(acts, weights, lut, chunk_patches=1000)
        assert np.array_equal(small, large)


class TestDispatch:
    def test_all_modes(self, operands):
        acts, weights = operands
        accurate = product_sums(acts, weights, ApproximationMode.ACCURATE)
        assert np.array_equal(accurate, acts @ weights)
        perforated = product_sums(acts, weights, ApproximationMode.PERFORATED, m=2)
        assert np.array_equal(perforated, perforated_product_sums(acts, weights, 2))
        cv_mode = product_sums(acts, weights, ApproximationMode.PERFORATED_CV, m=2)
        default_cv = ControlVariate.from_weight_matrix(weights)
        assert np.array_equal(
            cv_mode, perforated_product_sums(acts, weights, 2, default_cv)
        )

    def test_uses_control_variate_property(self):
        assert ApproximationMode.PERFORATED_CV.uses_control_variate
        assert not ApproximationMode.PERFORATED.uses_control_variate


class TestAcceleratorConfig:
    def test_mode_derivation(self):
        assert AcceleratorConfig.accurate(32).mode is ApproximationMode.ACCURATE
        assert AcceleratorConfig.make(32, 2).mode is ApproximationMode.PERFORATED_CV
        assert (
            AcceleratorConfig.make(32, 2, use_control_variate=False).mode
            is ApproximationMode.PERFORATED
        )

    def test_columns_include_mac_plus(self):
        assert AcceleratorConfig.make(16, 1).columns == 17
        assert AcceleratorConfig.make(16, 1, use_control_variate=False).columns == 16
        assert AcceleratorConfig.accurate(16).columns == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(array_size=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(array_size=8, perforation=9)
        with pytest.raises(ValueError):
            AcceleratorConfig(array_size=8, clock_ns=0.0)
        with pytest.raises(ValueError):
            AcceleratorConfig(array_size=8, activation_bits=4)

    def test_describe(self):
        assert "accurate" in AcceleratorConfig.accurate(64).describe()
        assert "m=2" in AcceleratorConfig.make(64, 2).describe()
        assert "w/o V" in AcceleratorConfig.make(64, 2, use_control_variate=False).describe()
