"""Layer forward/backward tests, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    Add,
    AvgPool2D,
    BatchNorm,
    ChannelShuffle,
    Concat,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    Pad,
    ReLU,
)


def numerical_gradient(f, x, eps=1e-5):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f()
        flat[i] = original - eps
        minus = f()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_input_gradient(layer, *inputs, input_index=0, atol=1e-5):
    """Compare the layer's backward pass against numerical differentiation."""
    rng = np.random.default_rng(0)
    out = layer.forward(*inputs, training=True)
    upstream = rng.normal(size=out.shape)

    def loss():
        return float((layer.forward(*inputs, training=True) * upstream).sum())

    grads = layer.backward(upstream)
    numeric = numerical_gradient(loss, inputs[input_index])
    assert np.allclose(grads[input_index], numeric, atol=atol), (
        f"analytic/numeric input gradient mismatch for {type(layer).__name__}"
    )


def check_param_gradient(layer, param_name, *inputs, atol=1e-5):
    """Numerical check of one trainable-parameter gradient."""
    rng = np.random.default_rng(1)
    out = layer.forward(*inputs, training=True)
    upstream = rng.normal(size=out.shape)

    def loss():
        return float((layer.forward(*inputs, training=True) * upstream).sum())

    layer.backward(upstream)
    analytic = layer.grads()[param_name]
    numeric = numerical_gradient(loss, layer.params()[param_name])
    assert np.allclose(analytic, numeric, atol=atol), (
        f"analytic/numeric {param_name} gradient mismatch for {type(layer).__name__}"
    )


class TestConv2D:
    def test_same_padding_preserves_size(self, rng):
        layer = Conv2D(3, 5, 3, padding="same", rng=rng)
        out = layer.forward(rng.normal(size=(2, 8, 8, 3)))
        assert out.shape == (2, 8, 8, 5)

    def test_valid_padding(self, rng):
        layer = Conv2D(3, 4, 3, padding="valid", rng=rng)
        assert layer.forward(rng.normal(size=(1, 8, 8, 3))).shape == (1, 6, 6, 4)

    def test_stride(self, rng):
        layer = Conv2D(3, 4, 3, stride=2, padding="same", rng=rng)
        assert layer.forward(rng.normal(size=(1, 8, 8, 3))).shape == (1, 4, 4, 4)

    def test_wrong_channels_rejected(self, rng):
        layer = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 8, 8, 2)))

    def test_invalid_groups_rejected(self):
        with pytest.raises(ValueError):
            Conv2D(3, 4, 3, groups=2)

    def test_grouped_conv_is_blockwise(self, rng):
        """A grouped conv equals two independent convolutions on channel halves."""
        layer = Conv2D(4, 6, 3, groups=2, use_bias=False, rng=rng)
        x = rng.normal(size=(1, 6, 6, 4))
        out = layer.forward(x)
        for g in range(2):
            single = Conv2D(2, 3, 3, use_bias=False, rng=rng)
            single.weight = layer.weight[..., g * 3 : (g + 1) * 3].copy()
            expected = single.forward(x[..., g * 2 : (g + 1) * 2])
            assert np.allclose(out[..., g * 3 : (g + 1) * 3], expected)

    def test_depthwise_conv_shapes(self, rng):
        layer = Conv2D(4, 4, 3, groups=4, rng=rng)
        assert layer.forward(rng.normal(size=(2, 6, 6, 4))).shape == (2, 6, 6, 4)

    def test_weight_matrix_layout(self, rng):
        layer = Conv2D(2, 3, 3, rng=rng)
        mat = layer.weight_matrix()
        assert mat.shape == (18, 3)
        assert np.shares_memory(mat, layer.weight) or np.allclose(
            mat, layer.weight.reshape(-1, 3)
        )

    def test_input_gradient(self, rng):
        layer = Conv2D(2, 3, 3, stride=1, padding="same", rng=rng)
        check_input_gradient(layer, rng.normal(size=(1, 5, 5, 2)))

    def test_weight_gradient(self, rng):
        layer = Conv2D(2, 2, 3, stride=2, padding="same", rng=rng)
        check_param_gradient(layer, "weight", rng.normal(size=(1, 6, 6, 2)))

    def test_bias_gradient(self, rng):
        layer = Conv2D(2, 2, 3, rng=rng)
        check_param_gradient(layer, "bias", rng.normal(size=(1, 4, 4, 2)))

    def test_grouped_gradient(self, rng):
        layer = Conv2D(4, 4, 3, groups=2, rng=rng)
        check_input_gradient(layer, rng.normal(size=(1, 4, 4, 4)))

    def test_backward_requires_training_forward(self, rng):
        layer = Conv2D(2, 2, 3, rng=rng)
        layer.forward(rng.normal(size=(1, 4, 4, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 4, 4, 2)))


class TestDense:
    def test_shapes(self, rng):
        layer = Dense(10, 4, rng=rng)
        assert layer.forward(rng.normal(size=(3, 10))).shape == (3, 4)

    def test_wrong_input_rejected(self, rng):
        with pytest.raises(ValueError):
            Dense(10, 4, rng=rng).forward(rng.normal(size=(3, 9)))

    def test_gradients(self, rng):
        layer = Dense(6, 3, rng=rng)
        x = rng.normal(size=(4, 6))
        check_input_gradient(layer, x)
        check_param_gradient(layer, "weight", x)
        check_param_gradient(layer, "bias", x)


class TestBatchNorm:
    def test_training_normalizes(self, rng):
        layer = BatchNorm(5)
        x = rng.normal(3.0, 2.0, size=(64, 4, 4, 5))
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=(0, 1, 2)), 0.0, atol=1e-7)
        assert np.allclose(out.var(axis=(0, 1, 2)), 1.0, atol=1e-5)

    def test_running_stats_updated(self, rng):
        layer = BatchNorm(3, momentum=0.5)
        x = rng.normal(2.0, 1.0, size=(32, 2, 2, 3))
        layer.forward(x, training=True)
        assert not np.allclose(layer.running_mean, 0.0)

    def test_inference_uses_running_stats(self, rng):
        layer = BatchNorm(3)
        x = rng.normal(size=(16, 2, 2, 3))
        for _ in range(30):
            layer.forward(x, training=True)
        train_out = layer.forward(x, training=True)
        eval_out = layer.forward(x, training=False)
        assert np.allclose(train_out, eval_out, atol=0.2)

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            BatchNorm(3).forward(rng.normal(size=(2, 4, 4, 5)))

    def test_gradients(self, rng):
        layer = BatchNorm(3)
        x = rng.normal(size=(6, 2, 2, 3))
        check_input_gradient(layer, x, atol=1e-4)
        check_param_gradient(layer, "gamma", x, atol=1e-4)
        check_param_gradient(layer, "beta", x, atol=1e-4)

    def test_works_on_2d_inputs(self, rng):
        layer = BatchNorm(4)
        out = layer.forward(rng.normal(size=(16, 4)), training=True)
        assert out.shape == (16, 4)


class TestActivationsAndPooling:
    def test_relu(self, rng):
        layer = ReLU()
        x = rng.normal(size=(3, 4))
        out = layer.forward(x, training=True)
        assert (out >= 0).all()
        check_input_gradient(ReLU(), x + 0.1 * np.sign(x))  # avoid kink at 0

    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = MaxPool2D(2).forward(x)
        assert np.allclose(out.reshape(-1), [5, 7, 13, 15])

    def test_maxpool_requires_divisible(self, rng):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(rng.normal(size=(1, 5, 5, 1)))

    def test_maxpool_gradient(self, rng):
        x = rng.normal(size=(2, 4, 4, 3))
        check_input_gradient(MaxPool2D(2), x)

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = AvgPool2D(2).forward(x)
        assert np.allclose(out.reshape(-1), [2.5, 4.5, 10.5, 12.5])

    def test_avgpool_gradient(self, rng):
        check_input_gradient(AvgPool2D(2), rng.normal(size=(1, 4, 4, 2)))

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 4, 4, 3))
        out = GlobalAvgPool().forward(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, x.mean(axis=(1, 2)))
        check_input_gradient(GlobalAvgPool(), x)

    def test_flatten(self, rng):
        x = rng.normal(size=(2, 3, 3, 4))
        layer = Flatten()
        assert layer.forward(x, training=True).shape == (2, 36)
        check_input_gradient(Flatten(), x)


class TestMergeLayers:
    def test_add(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        layer = Add(2)
        assert np.allclose(layer.forward(a, b), a + b)
        grads = layer.backward(np.ones((2, 3)))
        assert len(grads) == 2

    def test_add_input_count_checked(self, rng):
        with pytest.raises(ValueError):
            Add(2).forward(rng.normal(size=(2, 3)))

    def test_concat(self, rng):
        a = rng.normal(size=(2, 4, 4, 3))
        b = rng.normal(size=(2, 4, 4, 5))
        layer = Concat(2)
        out = layer.forward(a, b, training=True)
        assert out.shape == (2, 4, 4, 8)
        ga, gb = layer.backward(out)
        assert ga.shape == a.shape and gb.shape == b.shape
        assert np.allclose(ga, a) and np.allclose(gb, b)

    def test_channel_shuffle_is_permutation(self, rng):
        x = rng.normal(size=(1, 2, 2, 6))
        layer = ChannelShuffle(2)
        out = layer.forward(x)
        assert sorted(out.reshape(-1)) == pytest.approx(sorted(x.reshape(-1)))

    def test_channel_shuffle_inverse_gradient(self, rng):
        """backward is the inverse permutation of forward."""
        x = rng.normal(size=(1, 2, 2, 6))
        layer = ChannelShuffle(3)
        out = layer.forward(x, training=True)
        (restored,) = layer.backward(out)
        assert np.allclose(restored, x)

    def test_channel_shuffle_divisibility(self, rng):
        with pytest.raises(ValueError):
            ChannelShuffle(4).forward(rng.normal(size=(1, 2, 2, 6)))

    def test_pad_channels(self, rng):
        x = rng.normal(size=(1, 2, 2, 3))
        layer = Pad(2)
        out = layer.forward(x, training=True)
        assert out.shape == (1, 2, 2, 5)
        assert np.allclose(out[..., 3:], 0.0)
        (grad,) = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
