"""Tests of the hardware cost models (Table I exactly, Fig. 4 / Table II trends)."""

import numpy as np
import pytest

from repro.core.accelerator_model import AcceleratorConfig
from repro.hardware.activity import (
    activity_weighted_multiplier_power,
    bit_toggle_rates,
    partial_product_activity,
)
from repro.hardware.area_power import (
    array_cost,
    array_cost_from_multiplier,
    mac_plus_cost,
    mac_star_cost,
    mac_unit_cost,
    macplus_area_share,
    macplus_power_share,
    normalized_array_area,
    normalized_array_power,
)
from repro.hardware.components import (
    accumulator_bits,
    adder_full_adders,
    array_multiplier_full_adders,
    mac_plus_full_adders,
    mac_star_full_adders,
    mac_unit_full_adders,
    perforated_multiplier_full_adders,
    sumx_accumulator_bits,
)
from repro.hardware.full_adders import (
    mac_plus_fa_increase,
    mac_star_fa_decrease,
    table_i,
    total_fa_decrease,
)
from repro.hardware.technology import GENERIC_14NM, TechnologyModel


class TestComponents:
    def test_accumulator_bits(self):
        assert accumulator_bits(64) == 22
        assert accumulator_bits(16) == 20
        with pytest.raises(ValueError):
            accumulator_bits(0)

    def test_sumx_accumulator_bits(self):
        assert sumx_accumulator_bits(64, 1) == 6
        assert sumx_accumulator_bits(64, 2) == 8
        assert sumx_accumulator_bits(16, 3) == 7
        with pytest.raises(ValueError):
            sumx_accumulator_bits(16, 0)

    def test_multiplier_full_adders(self):
        assert array_multiplier_full_adders(8, 8) == 56
        assert array_multiplier_full_adders(4, 8) == 28
        with pytest.raises(ValueError):
            array_multiplier_full_adders(0, 8)

    def test_perforated_multiplier_drops_8m(self):
        for m in range(4):
            assert perforated_multiplier_full_adders(m) == 56 - 8 * m
        with pytest.raises(ValueError):
            perforated_multiplier_full_adders(8)

    def test_adder_full_adders(self):
        assert adder_full_adders(22) == 22
        assert adder_full_adders(8, ripple_with_half_adder=True) == 7.5
        with pytest.raises(ValueError):
            adder_full_adders(0)

    def test_mac_unit_decomposition(self):
        assert mac_unit_full_adders(64) == 56 + 22
        assert mac_star_full_adders(64, 1) == (56 - 8) + 21 + 5.5
        assert mac_plus_full_adders(64, 1) == 7 * 6 + 21.5
        with pytest.raises(ValueError):
            mac_star_full_adders(64, 0)
        with pytest.raises(ValueError):
            mac_plus_full_adders(64, 0)


class TestTableI:
    """Exact reproduction of every number in Table I of the paper."""

    PAPER_TABLE = {
        # (m, N): (MAC* decrease, MAC+ increase, total decrease)
        (1, 16): (1408, 760, 648),
        (1, 32): (4608, 1776, 2832),
        (1, 48): (8064, 3048, 5016),
        (1, 64): (14336, 4064, 10272),
        (2, 16): (3200, 984, 2216),
        (2, 32): (11776, 2224, 9552),
        (2, 48): (24192, 3720, 20472),
        (2, 64): (43008, 4960, 38048),
    }

    @pytest.mark.parametrize("key,expected", sorted(PAPER_TABLE.items()))
    def test_each_cell(self, key, expected):
        m, n = key
        assert mac_star_fa_decrease(n, m) == pytest.approx(expected[0])
        assert mac_plus_fa_increase(n, m) == pytest.approx(expected[1])
        assert total_fa_decrease(n, m) == pytest.approx(expected[2])

    def test_table_generator_covers_grid(self):
        rows = table_i()
        assert len(rows) == 8
        for row in rows:
            expected = self.PAPER_TABLE[(row.m, row.array_size)]
            assert row.total_decrease == pytest.approx(expected[2])

    def test_per_unit_closed_form(self):
        """MAC* saves 9m - ceil(log2(N(2^m-1))) + 0.5 FAs (paper, Section IV)."""
        for n in (16, 32, 48, 64):
            for m in (1, 2, 3):
                per_unit = mac_star_fa_decrease(n, m) / (n * n)
                expected = 9 * m - sumx_accumulator_bits(n, m) + 0.5
                assert per_unit == pytest.approx(expected)

    def test_mac_plus_overhead_grows_slower_than_savings(self):
        """Savings are O(N^2), overhead O(N): the ratio grows with N."""
        ratios = [
            mac_star_fa_decrease(n, 1) / mac_plus_fa_increase(n, 1) for n in (16, 32, 64)
        ]
        assert ratios == sorted(ratios)
        assert ratios[0] > 1.0  # even at N=16 the savings dominate (paper: 2.59x)
        assert ratios[0] == pytest.approx(1408 / 760)


class TestTechnology:
    def test_default_instance_valid(self):
        assert GENERIC_14NM.perforated_power_factor(0) == 1.0
        assert GENERIC_14NM.perforated_power_factor(2) < GENERIC_14NM.perforated_power_factor(1)
        assert GENERIC_14NM.clock_ns == pytest.approx(1.0)

    def test_unsupported_m_rejected(self):
        with pytest.raises(ValueError):
            GENERIC_14NM.perforated_power_factor(9)
        with pytest.raises(ValueError):
            GENERIC_14NM.perforated_area_factor(-1)

    def test_share_validation(self):
        with pytest.raises(ValueError):
            TechnologyModel(mac_power_shares=(0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            TechnologyModel(macplus_activity_factor=0.0)
        with pytest.raises(ValueError):
            TechnologyModel(ripple_adder_power_factor=2.0)


class TestAreaPowerModel:
    def test_mac_unit_cost_positive(self):
        cost = mac_unit_cost(64)
        assert cost.power_uw > 0 and cost.area_um2 > 0 and cost.delay_ns > 0
        assert cost.power_mw == pytest.approx(cost.power_uw / 1e3)
        assert cost.area_mm2 == pytest.approx(cost.area_um2 / 1e6)

    def test_mac_star_cheaper_than_mac(self):
        for m in (1, 2, 3):
            star = mac_star_cost(64, m)
            base = mac_unit_cost(64)
            assert star.power_uw < base.power_uw
            assert star.delay_ns <= base.delay_ns

    def test_mac_star_requires_m(self):
        with pytest.raises(ValueError):
            mac_star_cost(64, 0)
        with pytest.raises(ValueError):
            mac_plus_cost(64, 0)

    def test_mac_plus_much_cheaper_than_mac(self):
        plus = mac_plus_cost(64, 2)
        base = mac_unit_cost(64)
        assert plus.power_uw < 0.5 * base.power_uw

    def test_array_cost_scaling(self):
        small = array_cost(AcceleratorConfig.accurate(16))
        large = array_cost(AcceleratorConfig.accurate(64))
        assert large.power_uw == pytest.approx(16 * small.power_uw, rel=0.05)

    @pytest.mark.parametrize("n", [16, 32, 48, 64])
    def test_fig4_power_bands(self, n):
        """Power reduction per m lands in the band reported in Fig. 4a."""
        reductions = {
            m: 1.0 - normalized_array_power(AcceleratorConfig.make(n, m)) for m in (1, 2, 3)
        }
        assert 0.18 <= reductions[1] <= 0.30
        assert 0.30 <= reductions[2] <= 0.42
        assert 0.45 <= reductions[3] <= 0.60
        assert reductions[1] < reductions[2] < reductions[3]

    def test_fig4_power_nearly_independent_of_n(self):
        values = [
            normalized_array_power(AcceleratorConfig.make(n, 2)) for n in (16, 32, 48, 64)
        ]
        assert max(values) - min(values) < 0.02

    def test_fig4_area_trends(self):
        """m=1 keeps area almost unchanged; area gains grow with m (Fig. 4b)."""
        areas = {
            m: normalized_array_area(AcceleratorConfig.make(64, m)) for m in (1, 2, 3)
        }
        assert areas[1] > 0.95
        assert areas[1] > areas[2] > areas[3]
        assert areas[3] < 0.90

    def test_table2_macplus_shares_small_and_shrinking(self):
        """MAC+ consumes < 2.5 % of the array and its share shrinks with N."""
        for m in (1, 2, 3):
            shares = [
                macplus_power_share(AcceleratorConfig.make(n, m)) for n in (16, 32, 48, 64)
            ]
            assert all(share < 0.025 for share in shares)
            assert shares == sorted(shares, reverse=True)
            area_shares = [
                macplus_area_share(AcceleratorConfig.make(n, m)) for n in (16, 32, 48, 64)
            ]
            assert all(share < 0.025 for share in area_shares)

    def test_macplus_share_requires_cv_config(self):
        with pytest.raises(ValueError):
            macplus_power_share(AcceleratorConfig.accurate(64))
        with pytest.raises(ValueError):
            macplus_area_share(AcceleratorConfig.make(64, 2, use_control_variate=False))

    def test_array_cost_from_multiplier(self):
        accurate = array_cost_from_multiplier(1.0, 1.0, 64)
        cheaper = array_cost_from_multiplier(0.5, 0.6, 64)
        overhead = array_cost_from_multiplier(0.5, 0.6, 64, multiplier_overhead=1.3)
        assert cheaper.power_uw < accurate.power_uw
        assert cheaper.power_uw < overhead.power_uw < accurate.power_uw
        assert accurate.power_uw == pytest.approx(
            array_cost(AcceleratorConfig.accurate(64)).power_uw
        )
        with pytest.raises(ValueError):
            array_cost_from_multiplier(0.5, 0.5, 64, multiplier_overhead=0.9)

    def test_scaled_and_add(self):
        a = mac_unit_cost(16)
        total = a.scaled(2) + a.scaled(3)
        assert total.power_uw == pytest.approx(5 * a.power_uw)
        assert total.delay_ns == pytest.approx(a.delay_ns)


class TestActivity:
    def test_toggle_rates_of_counter(self):
        """A binary counter toggles bit 0 every step, bit 1 every other step, ..."""
        rates = bit_toggle_rates(np.arange(256), bits=8)
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(0.5, abs=0.01)
        assert rates[7] < rates[0]

    def test_toggle_rates_need_two_samples(self):
        with pytest.raises(ValueError):
            bit_toggle_rates(np.array([3]))

    def test_lsb_rows_most_active_for_real_traffic(self, rng):
        acts = rng.integers(0, 256, size=4000)
        weights = rng.integers(0, 256, size=4000)
        activity = partial_product_activity(weights, acts)
        # Low-significance activation bits toggle at ~0.5, the MSB of a
        # uniform stream also toggles ~0.5; compare against a *peaked*
        # activation distribution where MSBs are almost static.
        peaked = rng.integers(0, 64, size=4000)
        peaked_activity = partial_product_activity(weights, peaked)
        assert peaked_activity[0] > peaked_activity[7]

    def test_activity_weighted_power_between_bounds(self, rng):
        acts = rng.integers(0, 200, size=3000)
        weights = rng.integers(0, 256, size=3000)
        for m in (1, 2, 3):
            remaining = activity_weighted_multiplier_power(weights, acts, m)
            assert 0.0 < remaining < 1.0
            # Must save at least the uniform-activity share of the removed rows.
            assert remaining < 1.0 - 0.5 * m / 8

    def test_activity_weighted_power_m_zero(self, rng):
        acts = rng.integers(0, 256, size=100)
        weights = rng.integers(0, 256, size=100)
        assert activity_weighted_multiplier_power(weights, acts, 0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            activity_weighted_multiplier_power(weights, acts, 8)
