"""Tests of the fleet layer (:mod:`repro.runtime.fleet`).

The gateway contract lives here:

* **routing** — the table shards models disjointly, renumbers them into
  one global index space, and refuses overlapping topologies;
* **transparency** — every job-API client works unchanged against a
  gateway URL: submissions route to the owning shard, job refs
  (``<shard>/<job-id>``) poll back through it, accuracies are bit-exact
  with asking the shard directly, and a two-shard
  :func:`~repro.runtime.jobs.client.sweep_over_jobs` equals a local
  :func:`~repro.simulation.campaign.parallel_sweep` over the same models;
* **degradation** — a dead shard surfaces as a fast machine-readable 503
  (``reason: "shard_down"``), ``/healthz`` reports ``degraded``, the
  surviving shards keep serving, and an evicted shard only rejoins after
  re-verifying its ``(name, dataset, context_key)`` identity;
* **aggregation** — ``/stats`` fans out and sums shard counters into one
  ``repro-runtime-stats/v1.1`` payload with namespaced sessions;
* **client resilience** — :class:`~repro.runtime.jobs.client.HttpJobClient`
  retries idempotent GETs through transient connection failures (flaky
  stub server) but never retries a POST.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.runtime.fleet import (
    Backend,
    BackendPool,
    FleetConfigError,
    GatewayServer,
    RoutingTable,
)
from repro.runtime.jobs import (
    AdmissionError,
    HttpJobClient,
    JobClientError,
    JobFailedError,
    JobManager,
    sweep_over_jobs,
)
from repro.runtime.server import JobServer
from repro.simulation.campaign import TrainedModel, parallel_sweep
from repro.simulation.inference import AccurateProduct, ExecutionPlan, PerforatedProduct

pytestmark = pytest.mark.fleet


# ----------------------------------------------------------------------
# Fixtures: a two-shard fleet over one tiny trained model hosted under
# two distinct names (disjoint routing keys, shared training cost).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trained_a(trained_tiny_model, tiny_dataset):
    return TrainedModel(
        name="vgg13",
        dataset_name=tiny_dataset.name,
        model=trained_tiny_model,
        float_accuracy=0.0,
    )


@pytest.fixture(scope="module")
def trained_b(trained_tiny_model, tiny_dataset):
    return TrainedModel(
        name="vgg16",
        dataset_name=tiny_dataset.name,
        model=trained_tiny_model,
        float_accuracy=0.0,
    )


def _boot_shard(trained, dataset) -> tuple[JobManager, JobServer, threading.Thread]:
    manager = JobManager([trained], {dataset.name: dataset})
    server = JobServer(manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return manager, server, thread


def _boot_gateway(pool) -> tuple[GatewayServer, threading.Thread]:
    gateway = GatewayServer(pool)
    thread = threading.Thread(target=gateway.serve_forever, daemon=True)
    thread.start()
    return gateway, thread


@pytest.fixture(scope="module")
def fleet(trained_a, trained_b, tiny_dataset):
    """(gateway, {shard: manager}) — two live shards behind one gateway."""
    manager_a, server_a, thread_a = _boot_shard(trained_a, tiny_dataset)
    manager_b, server_b, thread_b = _boot_shard(trained_b, tiny_dataset)
    pool = BackendPool(
        [Backend("shard0", server_a.url), Backend("shard1", server_b.url)]
    )
    gateway, gw_thread = _boot_gateway(pool)
    yield gateway, {"shard0": manager_a, "shard1": manager_b}
    gateway.shutdown_and_close()
    gw_thread.join(timeout=10)
    for server, thread in ((server_a, thread_a), (server_b, thread_b)):
        server.shutdown_and_close()
        thread.join(timeout=10)


@pytest.fixture()
def client(fleet):
    gateway, _managers = fleet
    return HttpJobClient(gateway.url, poll_interval=0.01)


# ----------------------------------------------------------------------
class TestRoutingTable:
    INFO_A = {
        "index": 0,
        "name": "vgg13",
        "dataset": "d1",
        "context_key": "a" * 64,
        "mac_layer_names": ["c1"],
        "float_accuracy": 0.5,
    }
    INFO_B = {**INFO_A, "name": "vgg16", "context_key": "b" * 64}

    def test_renumbers_shards_into_one_index_space(self):
        table = RoutingTable({"s0": [self.INFO_A], "s1": [self.INFO_B]})
        models = table.models()
        assert [info["index"] for info in models] == [0, 1]
        assert [info["shard"] for info in models] == ["s0", "s1"]
        assert [info["shard_index"] for info in models] == [0, 0]
        route = table.by_index(1)
        assert route.shard == "s1"
        assert route.local_index == 0

    def test_overlapping_model_sets_are_a_config_error(self):
        with pytest.raises(FleetConfigError, match="disjoint"):
            RoutingTable({"s0": [self.INFO_A], "s1": [dict(self.INFO_A)]})

    def test_empty_fleet_is_a_config_error(self):
        with pytest.raises(FleetConfigError):
            RoutingTable({"s0": []})

    def test_bool_is_not_a_model_index(self):
        table = RoutingTable({"s0": [self.INFO_A, self.INFO_B]})
        with pytest.raises(IndexError):
            table.by_index(True)
        with pytest.raises(IndexError):
            table.by_index(2)

    def test_by_name_resolution(self):
        same_name_other_dataset = {**self.INFO_A, "dataset": "d2"}
        table = RoutingTable(
            {"s0": [self.INFO_A], "s1": [same_name_other_dataset]}
        )
        assert table.by_name("vgg13", "d2").shard == "s1"
        with pytest.raises(KeyError, match="several datasets"):
            table.by_name("vgg13")
        with pytest.raises(KeyError, match="no model"):
            table.by_name("lenet9000")


class TestGatewayEndpoints:
    def test_healthz_reports_every_shard(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["models"] == 2
        assert set(payload["shards"]) == {"shard0", "shard1"}
        assert all(entry["healthy"] for entry in payload["shards"].values())

    def test_models_spans_both_shards(self, client):
        infos = client.models()
        assert [(info["index"], info["name"], info["shard"]) for info in infos] == [
            (0, "vgg13", "shard0"),
            (1, "vgg16", "shard1"),
        ]
        assert all(len(info["context_key"]) == 64 for info in infos)

    def test_submission_routes_to_the_owning_shard(self, client, fleet):
        _gateway, managers = fleet
        plans = [
            ExecutionPlan.uniform(AccurateProduct()),
            ExecutionPlan.uniform(PerforatedProduct(1)),
        ]
        direct = managers["shard1"].service.evaluate_plans(0, plans)
        job_id = client.submit_job(1, plans, session="route")
        assert job_id.startswith("shard1/")
        view = client.wait(job_id, timeout=240)
        assert view["shard"] == "shard1"
        assert view["accuracies"] == direct

    def test_submission_by_name_works(self, client):
        job_id = client.submit_job(
            "vgg13", [ExecutionPlan.uniform(AccurateProduct())], session="byname"
        )
        assert job_id.startswith("shard0/")
        client.wait(job_id, timeout=240)

    def test_unknown_model_is_404(self, client):
        with pytest.raises(JobClientError) as error:
            client.submit_job(
                "lenet9000", [ExecutionPlan.uniform(AccurateProduct())]
            )
        assert error.value.status == 404

    def test_unknown_job_ref_is_404(self, client):
        for ref in ("nonsense", "shard0/job-999999", "ghost/job-000001"):
            with pytest.raises(JobClientError) as error:
                client.job(ref)
            assert error.value.status == 404, ref

    def test_priority_and_deadline_travel_through(self, client):
        job_id = client.submit_job(
            0,
            [ExecutionPlan.uniform(AccurateProduct())],
            session="prio",
            priority=4,
            deadline_s=300.0,
        )
        view = client.wait(job_id, timeout=240)
        assert view["priority"] == 4
        assert view["deadline_s"] == 300.0

    def test_stats_aggregates_both_shards(self, client, fleet):
        _gateway, managers = fleet
        # Make sure both shards have served something.
        for index in (0, 1):
            client.wait(
                client.submit_job(
                    index,
                    [ExecutionPlan.uniform(PerforatedProduct(2))],
                    session="agg",
                ),
                timeout=240,
            )
        stats = client.stats()
        assert stats["schema"] == "repro-runtime-stats/v1.1"
        assert {"engine", "jobs", "cache", "sessions", "gateway", "shards"} <= set(
            stats
        )
        per_shard = [managers[name].stats() for name in ("shard0", "shard1")]
        assert stats["jobs"]["completed"] == sum(
            entry["jobs"]["completed"] for entry in per_shard
        )
        assert stats["cache"]["misses"] == sum(
            entry["cache"]["misses"] for entry in per_shard
        )
        assert stats["gateway"]["shards"] == 2
        assert stats["gateway"]["jobs_forwarded"] >= 2
        # Sessions are namespaced by shard.
        assert any(key.startswith("shard0/") for key in stats["sessions"])
        assert all("/" in key for key in stats["sessions"])


class TestGatewaySweepParity:
    def test_two_shard_sweep_equals_local_parallel_sweep(
        self, client, trained_a, trained_b, tiny_dataset
    ):
        reference = parallel_sweep(
            [trained_a, trained_b],
            {tiny_dataset.name: tiny_dataset},
            perforations=(1, 2),
            max_workers=1,
        )
        sweep, totals = sweep_over_jobs(
            client, perforations=(1, 2), session="sweep-fleet"
        )
        assert sweep.baselines == reference.baselines
        assert sweep.records == reference.records
        assert totals["jobs"] == 2


class TestShardFailure:
    @pytest.fixture()
    def mortal_fleet(self, trained_a, trained_b, tiny_dataset):
        """A function-scoped fleet whose shard1 the test may kill."""
        manager_a, server_a, thread_a = _boot_shard(trained_a, tiny_dataset)
        manager_b, server_b, thread_b = _boot_shard(trained_b, tiny_dataset)
        pool = BackendPool(
            [
                Backend("shard0", server_a.url),
                # Keep retry cost tiny: a dead local socket refuses instantly.
                Backend("shard1", server_b.url, retries=1, backoff=0.01),
            ]
        )
        gateway, gw_thread = _boot_gateway(pool)

        def kill_shard1() -> None:
            server_b.shutdown_and_close()
            thread_b.join(timeout=10)

        yield gateway, kill_shard1
        gateway.shutdown_and_close()
        gw_thread.join(timeout=10)
        server_a.shutdown_and_close()
        thread_a.join(timeout=10)
        if thread_b.is_alive():
            server_b.shutdown_and_close()
            thread_b.join(timeout=10)

    def test_dead_shard_degrades_with_machine_readable_503(self, mortal_fleet):
        gateway, kill_shard1 = mortal_fleet
        client = HttpJobClient(gateway.url, poll_interval=0.01)
        kill_shard1()
        # POST to the dead shard: fast 503 with a machine-readable body.
        payload = {
            "model_index": 1,
            "plans": [{"default": {"kind": "accurate"}, "per_layer": {}}],
        }
        request = urllib.request.Request(
            f"{gateway.url}/jobs",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(request, timeout=30)
        assert error.value.code == 503
        body = json.loads(error.value.read().decode())
        assert body["reason"] == "shard_down"
        assert body["shard"] == "shard1"
        # Polls into the dead shard 503 too (no hang), health degrades,
        # and the healthy shard keeps serving.
        with pytest.raises(JobClientError) as poll_error:
            client.job("shard1/job-000001")
        assert poll_error.value.status == 503
        health = client.healthz()
        assert health["status"] == "degraded"
        assert health["shards"]["shard1"]["healthy"] is False
        assert health["shards"]["shard0"]["healthy"] is True
        view = client.wait(
            client.submit_job(0, [ExecutionPlan.uniform(AccurateProduct())]),
            timeout=240,
        )
        assert view["state"] == "done"

    def test_admission_rejections_relay_through_the_gateway(
        self, trained_a, tiny_dataset
    ):
        manager = JobManager(
            [trained_a],
            {tiny_dataset.name: tiny_dataset},
            max_inflight_per_session=1,
            auto_start=False,
        )
        server = JobServer(manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        gateway, gw_thread = _boot_gateway(
            BackendPool([Backend("solo", server.url)])
        )
        try:
            client = HttpJobClient(gateway.url, poll_interval=0.01)
            plans = [ExecutionPlan.uniform(AccurateProduct())]
            client.submit_job(0, plans, session="alice")
            with pytest.raises(AdmissionError) as busy:
                client.submit_job(0, plans, session="alice")
            assert busy.value.reason == "session_busy"
        finally:
            gateway.shutdown_and_close()
            gw_thread.join(timeout=10)
            server.shutdown_and_close()
            thread.join(timeout=10)

    def test_recovery_requires_matching_model_identity(
        self, trained_a, tiny_dataset
    ):
        manager, server, thread = _boot_shard(trained_a, tiny_dataset)
        try:
            backend = Backend("s0", server.url)
            real_triples = {
                (info["name"], info["dataset"], info["context_key"])
                for info in manager.models()
            }
            # Evict, then demand an identity the live shard does not have:
            # the probe must refuse to readmit it.
            backend.note_failure("simulated outage")
            assert not backend.healthy
            backend.expected_triples = {("other", "ds", "0" * 64)}
            backend.probe()
            assert not backend.healthy
            assert "different model set" in (backend.last_error or "")
            # With the recorded identity the shard rejoins.
            backend.expected_triples = real_triples
            backend.probe()
            assert backend.healthy
        finally:
            server.shutdown_and_close()
            thread.join(timeout=10)


# ----------------------------------------------------------------------
class _FlakyServer:
    """A stub that kills the first N connections, then answers 200 JSON."""

    def __init__(self, flaky_connections: int):
        self.socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.socket.bind(("127.0.0.1", 0))
        self.socket.listen(16)
        self.flaky = int(flaky_connections)
        self.connections = 0
        self._closed = False
        threading.Thread(target=self._loop, daemon=True).start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.socket.getsockname()[1]}"

    def _loop(self) -> None:
        while not self._closed:
            try:
                connection, _address = self.socket.accept()
            except OSError:
                return
            self.connections += 1
            if self.connections <= self.flaky:
                # Accept then slam the door: the client sees a reset /
                # "remote end closed connection without response".
                connection.close()
                continue
            try:
                connection.recv(65536)
                body = b'{"ok": true}'
                connection.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                    b"Connection: close\r\n\r\n" + body
                )
            except OSError:
                pass
            finally:
                connection.close()

    def close(self) -> None:
        self._closed = True
        try:
            self.socket.close()
        except OSError:
            pass


class TestHttpClientRetries:
    def test_get_survives_transient_connection_failures(self):
        stub = _FlakyServer(flaky_connections=2)
        try:
            client = HttpJobClient(stub.url, retries=3, backoff=0.01)
            assert client.request("GET", "/healthz") == {"ok": True}
            assert stub.connections == 3  # two flakes + one success
        finally:
            stub.close()

    def test_get_gives_up_past_the_retry_budget(self):
        stub = _FlakyServer(flaky_connections=10)
        try:
            client = HttpJobClient(stub.url, retries=2, backoff=0.01)
            with pytest.raises(JobClientError) as error:
                client.request("GET", "/healthz")
            assert error.value.status is None
            assert stub.connections == 3  # initial try + two retries
        finally:
            stub.close()

    def test_post_is_never_retried(self):
        stub = _FlakyServer(flaky_connections=1)
        try:
            client = HttpJobClient(stub.url, retries=5, backoff=0.01)
            with pytest.raises(JobClientError) as error:
                client.request("POST", "/jobs", {"model_index": 0})
            assert error.value.status is None
            # One connection, no second submission attempt: a POST that
            # died may already hold server-side state.
            assert stub.connections == 1
        finally:
            stub.close()

    def test_retries_off_means_one_attempt(self):
        stub = _FlakyServer(flaky_connections=1)
        try:
            client = HttpJobClient(stub.url, retries=0)
            with pytest.raises(JobClientError):
                client.request("GET", "/healthz")
            assert stub.connections == 1
        finally:
            stub.close()
