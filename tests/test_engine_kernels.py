"""Parity suite: compiled product kernels vs. the legacy product-sum paths.

Every kernel produced by ``ProductModel.compile`` — through **every
registered engine backend** — must be *bit-exact* against the corresponding
stateless function in :mod:`repro.core.approx_conv`; this is what allows the
executor to run the compiled engine by default while keeping the legacy path
as the reference.  The ``engine_backend`` fixture parametrizes the suite
over the backend registry and skips (with a reason) any backend whose
availability probe fails, e.g. ``numba`` on a numba-less install.
Run standalone with ``pytest -m engine``.
"""

import numpy as np
import pytest

from repro.core.approx_conv import (
    accurate_product_sums,
    lut_product_sums,
    perforated_product_sums,
)
from repro.core.backends import backend_names, get_backend
from repro.core.control_variate import ControlVariate
from repro.core.product_kernels import (
    AccurateKernel,
    CallbackKernel,
    LUTKernel,
    PerforatedKernel,
)
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.lut import LUTMultiplier
from repro.multipliers.perforated import PerforatedMultiplier
from repro.multipliers.truncated import TruncatedMultiplier
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    LUTProduct,
    PerforatedProduct,
)

pytestmark = pytest.mark.engine


@pytest.fixture(params=backend_names())
def engine_backend(request):
    """Every registered backend; unavailable ones skip with their reason."""
    backend = get_backend(request.param)
    available, reason = backend.availability()
    if not available:
        pytest.skip(f"engine backend {backend.name!r} unavailable: {reason}")
    return backend


@pytest.fixture
def operands(rng):
    acts = rng.integers(0, 256, size=(37, 18), dtype=np.uint8)
    weights = rng.integers(0, 256, size=(18, 7), dtype=np.uint8)
    return acts, weights


def random_lut(rng):
    """A structureless multiplier table (worst case for the compiled path)."""
    exact = np.arange(256, dtype=np.int64)[:, None] * np.arange(256, dtype=np.int64)
    noise = rng.integers(-500, 500, size=(256, 256))
    return exact + noise


class TestKernelParity:
    def test_accurate_kernel_bit_exact(self, operands):
        acts, weights = operands
        kernel = AccurateKernel(weights)
        expected = accurate_product_sums(acts, weights)
        result = kernel(acts)
        assert result.dtype == expected.dtype
        np.testing.assert_array_equal(result, expected)

    @pytest.mark.parametrize("m", [0, 1, 2, 3, 7])
    def test_perforated_kernel_bit_exact(self, operands, m):
        acts, weights = operands
        kernel = PerforatedKernel(weights, m)
        expected = perforated_product_sums(acts, weights, m)
        np.testing.assert_array_equal(kernel(acts), expected)

    @pytest.mark.parametrize("m", [0, 1, 2, 3])
    @pytest.mark.parametrize("quantized", [True, False])
    def test_perforated_cv_kernel_bit_exact(self, operands, m, quantized):
        acts, weights = operands
        cv = ControlVariate.from_weight_matrix(weights, quantize=quantized)
        kernel = PerforatedKernel(weights, m, cv)
        expected = perforated_product_sums(acts, weights, m, cv)
        result = kernel(acts)
        assert np.asarray(result).dtype == np.asarray(expected).dtype
        np.testing.assert_array_equal(result, expected)

    def test_lut_kernel_bit_exact_random_table(self, operands, rng):
        acts, weights = operands
        lut = random_lut(rng)
        kernel = LUTKernel(weights, lut)
        expected = lut_product_sums(acts, weights, lut)
        np.testing.assert_array_equal(kernel(acts), expected)

    def test_lut_kernel_bit_exact_structured_tables(self, operands):
        acts, weights = operands
        for multiplier in (PerforatedMultiplier(2), TruncatedMultiplier(2, 3)):
            lut = multiplier.build_lut()
            kernel = LUTKernel(weights, lut)
            expected = lut_product_sums(acts, weights, lut)
            np.testing.assert_array_equal(kernel(acts), expected)

    def test_accurate_lut_compiles_to_exact_matmul(self, operands):
        """AccurateMultiplier's LUT has zero error: pure matmul, no error term."""
        acts, weights = operands
        kernel = LUTKernel(weights, AccurateMultiplier().build_lut())
        assert kernel.is_exact
        np.testing.assert_array_equal(kernel(acts), accurate_product_sums(acts, weights))

    def test_lut_kernel_lowmem_mode_bit_exact(self, operands, rng):
        """The low-memory fallback (error matrix over budget) stays bit-exact."""
        acts, weights = operands
        lut = random_lut(rng)
        lowmem = LUTKernel(weights, lut, max_error_matrix_bytes=0)
        assert lowmem._error_matrix is None and not lowmem.is_exact
        np.testing.assert_array_equal(lowmem(acts), lut_product_sums(acts, weights, lut))

    def test_lut_kernel_gather_fallback_bit_exact(self, operands, rng, monkeypatch):
        """The no-scipy per-tap gather path stays bit-exact."""
        import repro.core.product_kernels as pk

        acts, weights = operands
        lut = random_lut(rng)
        kernel = LUTKernel(weights, lut)
        monkeypatch.setattr(pk, "_sparse", None)
        np.testing.assert_array_equal(kernel(acts), lut_product_sums(acts, weights, lut))

    def test_lut_kernel_built_without_scipy_bit_exact(self, operands, rng, monkeypatch):
        """Compile *and* evaluate with scipy absent: the gather loop is the
        only error-sum path, and repeated calls must stay exact."""
        import repro.core.product_kernels as pk

        monkeypatch.setattr(pk, "_sparse", None)
        acts, weights = operands
        lut = random_lut(rng)
        kernel = LUTKernel(weights, lut)
        expected = lut_product_sums(acts, weights, lut)
        np.testing.assert_array_equal(kernel(acts), expected)
        np.testing.assert_array_equal(kernel(acts), expected)  # no state decay
        # Varying batch sizes through the same kernel (executor-style reuse).
        np.testing.assert_array_equal(kernel(acts[:5]), expected[:5])

    def test_executor_lut_plan_without_scipy(
        self, trained_tiny_model, tiny_dataset, rng, monkeypatch
    ):
        """End-to-end LUT inference with scipy absent matches the legacy path."""
        import repro.core.product_kernels as pk

        monkeypatch.setattr(pk, "_sparse", None)
        images = tiny_dataset.test_images[:4]
        calib = tiny_dataset.train_images[:32]
        plan = ExecutionPlan.uniform(LUTProduct(LUTMultiplier(random_lut(rng), name="noscipy")))
        compiled = ApproximateExecutor(trained_tiny_model, calib, use_compiled=True)
        legacy = ApproximateExecutor(trained_tiny_model, calib, use_compiled=False)
        np.testing.assert_array_equal(
            compiled.forward(images, plan), legacy.forward(images, plan)
        )

    def test_callback_kernel_wraps_product_sums(self, operands):
        acts, weights = operands
        cv = ControlVariate.from_weight_matrix(weights)
        model = PerforatedProduct(2, use_control_variate=True)
        kernel = CallbackKernel(model, weights, cv)
        np.testing.assert_array_equal(
            kernel(acts), model.product_sums(acts, weights, cv)
        )

    def test_wide_activation_codes_stay_exact(self, rng):
        """Non-uint8 codes must bypass the float32 fast path and stay exact.

        Small weights enable the float32 sgemm path (bound holds for 8-bit
        activations); direct callers may pass wider int64 codes, for which
        float32 accumulation would be inexact.
        """
        weights = rng.integers(0, 3, size=(6, 4), dtype=np.uint8)
        acts = rng.integers(0, 1 << 22, size=(9, 6)).astype(np.int64)
        np.testing.assert_array_equal(
            AccurateKernel(weights)(acts), accurate_product_sums(acts, weights)
        )
        np.testing.assert_array_equal(
            PerforatedKernel(weights, 2)(acts),
            perforated_product_sums(acts, weights, 2),
        )

    def test_kernel_shape_validation(self, operands):
        _, weights = operands
        kernel = AccurateKernel(weights)
        with pytest.raises(ValueError):
            kernel(np.zeros((4, weights.shape[0] + 1), dtype=np.uint8))

    def test_compile_dispatch(self, operands):
        _, weights = operands
        cv = ControlVariate.from_weight_matrix(weights)
        assert isinstance(AccurateProduct().compile(weights, cv), AccurateKernel)
        assert isinstance(PerforatedProduct(2).compile(weights, cv), PerforatedKernel)
        lut_model = LUTProduct(PerforatedMultiplier(1))
        assert isinstance(lut_model.compile(weights, cv), LUTKernel)


class TestBackendKernelParity:
    """Every registered backend is bit-exact against the legacy reference.

    Unavailable backends (e.g. numba without the package) are skipped with a
    reason by the ``engine_backend`` fixture, never silently dropped.
    """

    def test_accurate(self, operands, engine_backend):
        acts, weights = operands
        cv = ControlVariate.from_weight_matrix(weights)
        kernel = engine_backend.compile(AccurateProduct(), weights, cv)
        expected = accurate_product_sums(acts, weights)
        result = kernel(acts)
        assert np.asarray(result).dtype == expected.dtype
        np.testing.assert_array_equal(result, expected)

    @pytest.mark.parametrize("m", [0, 2, 7])
    def test_perforated(self, operands, engine_backend, m):
        acts, weights = operands
        cv = ControlVariate.from_weight_matrix(weights)
        kernel = engine_backend.compile(
            PerforatedProduct(m, use_control_variate=False), weights, cv
        )
        np.testing.assert_array_equal(
            kernel(acts), perforated_product_sums(acts, weights, m)
        )

    @pytest.mark.parametrize("m", [1, 3])
    @pytest.mark.parametrize("quantized", [True, False])
    def test_perforated_with_control_variate(self, operands, engine_backend, m, quantized):
        acts, weights = operands
        cv = ControlVariate.from_weight_matrix(weights, quantize=quantized)
        kernel = engine_backend.compile(PerforatedProduct(m, True), weights, cv)
        expected = perforated_product_sums(acts, weights, m, cv)
        result = kernel(acts)
        assert np.asarray(result).dtype == np.asarray(expected).dtype
        np.testing.assert_array_equal(result, expected)

    def test_lut_random_table(self, operands, engine_backend, rng):
        acts, weights = operands
        lut = random_lut(rng)
        model = LUTProduct(LUTMultiplier(lut, name="random"))
        kernel = engine_backend.compile(model, weights, None)
        np.testing.assert_array_equal(kernel(acts), lut_product_sums(acts, weights, lut))

    def test_lut_structured_tables(self, operands, engine_backend):
        acts, weights = operands
        for multiplier in (PerforatedMultiplier(2), TruncatedMultiplier(2, 3)):
            model = LUTProduct(multiplier)
            kernel = engine_backend.compile(model, weights, None)
            np.testing.assert_array_equal(
                kernel(acts), lut_product_sums(acts, weights, multiplier.build_lut())
            )

    def test_exotic_model_compiles_through_any_backend(self, operands, engine_backend):
        """Models without a backend-specialized kernel fall back bit-exact."""
        from repro.baselines.weight_oriented import WeightOrientedProduct

        acts, weights = operands
        cv = ControlVariate.from_weight_matrix(weights)
        model = WeightOrientedProduct(1, 3, threshold=128, compensate_mean=True)
        kernel = engine_backend.compile(model, weights, cv)
        np.testing.assert_array_equal(kernel(acts), model.product_sums(acts, weights, cv))

    def test_large_batch_chunking_is_exact(self, rng, engine_backend):
        """Batches larger than any internal chunk size stay bit-exact."""
        acts = rng.integers(0, 256, size=(2600, 12), dtype=np.uint8)
        weights = rng.integers(0, 256, size=(12, 5), dtype=np.uint8)
        cv = ControlVariate.from_weight_matrix(weights)
        kernel = engine_backend.compile(PerforatedProduct(2, True), weights, cv)
        np.testing.assert_array_equal(
            kernel(acts), perforated_product_sums(acts, weights, 2, cv)
        )


class TestWeightOrientedKernelParity:
    @pytest.mark.parametrize("compensate", [True, False])
    @pytest.mark.parametrize("m_low,m_high", [(0, 2), (1, 3)])
    def test_bit_exact(self, operands, compensate, m_low, m_high):
        from repro.baselines.weight_oriented import WeightOrientedProduct

        acts, weights = operands
        cv = ControlVariate.from_weight_matrix(weights)
        model = WeightOrientedProduct(m_low, m_high, threshold=128, compensate_mean=compensate)
        expected = model.product_sums(acts, weights, cv)
        kernel = model.compile(weights, cv)
        result = kernel(acts)
        assert np.asarray(result).dtype == np.asarray(expected).dtype
        np.testing.assert_array_equal(result, expected)


class TestExecutorEngineParity:
    """Compiled engine vs. legacy executor path on real (tiny) networks."""

    PLANS = {
        "accurate": lambda: ExecutionPlan.uniform(AccurateProduct()),
        "perforated_cv": lambda: ExecutionPlan.uniform(PerforatedProduct(2, True)),
        "perforated": lambda: ExecutionPlan.uniform(PerforatedProduct(3, False)),
        "lut": lambda: ExecutionPlan.uniform(LUTProduct(TruncatedMultiplier(1, 2))),
    }

    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    def test_forward_bit_exact(
        self, trained_tiny_model, tiny_dataset, plan_name, engine_backend
    ):
        images = tiny_dataset.test_images[:8]
        calib = tiny_dataset.train_images[:32]
        compiled = ApproximateExecutor(
            trained_tiny_model, calib, use_compiled=True, engine_backend=engine_backend
        )
        legacy = ApproximateExecutor(trained_tiny_model, calib, use_compiled=False)
        plan = self.PLANS[plan_name]()
        np.testing.assert_array_equal(
            compiled.forward(images, plan), legacy.forward(images, plan)
        )

    def test_grouped_conv_bit_exact(self, tiny_dataset, rng, engine_backend):
        from repro.models.zoo import build_model

        model = build_model("shufflenet", num_classes=tiny_dataset.num_classes, rng=rng)
        calib = tiny_dataset.train_images[:32]
        images = tiny_dataset.test_images[:4]
        compiled = ApproximateExecutor(
            model, calib, use_compiled=True, engine_backend=engine_backend
        )
        legacy = ApproximateExecutor(model, calib, use_compiled=False)
        for plan in (
            ExecutionPlan.uniform(PerforatedProduct(2, True)),
            ExecutionPlan.uniform(LUTProduct(PerforatedMultiplier(2))),
        ):
            np.testing.assert_array_equal(
                compiled.forward(images, plan), legacy.forward(images, plan)
            )

    def test_accurate_lut_cross_check(self, trained_tiny_model, tiny_dataset):
        """LUT of the exact multiplier == exact matmul through the full model."""
        images = tiny_dataset.test_images[:8]
        calib = tiny_dataset.train_images[:32]
        executor = ApproximateExecutor(trained_tiny_model, calib)
        via_lut = executor.forward(
            images, ExecutionPlan.uniform(LUTProduct(AccurateMultiplier()))
        )
        via_matmul = executor.forward(images, ExecutionPlan.uniform(AccurateProduct()))
        np.testing.assert_array_equal(via_lut, via_matmul)

    def test_imported_lut_multiplier_bit_exact(self, trained_tiny_model, tiny_dataset, rng):
        """Externally characterized (LUTMultiplier) tables run compiled."""
        images = tiny_dataset.test_images[:4]
        calib = tiny_dataset.train_images[:32]
        executor = ApproximateExecutor(trained_tiny_model, calib)
        legacy = ApproximateExecutor(trained_tiny_model, calib, use_compiled=False)
        imported = LUTMultiplier(random_lut(rng), name="imported")
        plan = ExecutionPlan.uniform(LUTProduct(imported))
        np.testing.assert_array_equal(
            executor.forward(images, plan), legacy.forward(images, plan)
        )

    def test_weight_override_invalidates_kernels(self, trained_tiny_model, tiny_dataset):
        """Compiled kernels must track inference-time weight overrides."""
        calib = tiny_dataset.train_images[:32]
        images = tiny_dataset.test_images[:4]
        executor = ApproximateExecutor(trained_tiny_model, calib)
        plan = ExecutionPlan.uniform(AccurateProduct())
        reference = executor.forward(images, plan)
        layer = executor.mac_layer_names()[0]
        zeroed = [np.zeros_like(codes) for codes in executor.quantized_weights(layer)]
        executor.set_weight_override(layer, zeroed)
        overridden = executor.forward(images, plan)
        executor.clear_weight_overrides()
        restored = executor.forward(images, plan)
        assert not np.array_equal(overridden, reference)
        np.testing.assert_array_equal(restored, reference)

    def test_cross_plan_activation_cache(self, trained_tiny_model, tiny_dataset):
        """The first MAC layer's quantized activations are computed once per
        batch and reused across plans — bit-exactly."""
        images = tiny_dataset.test_images[:8]
        calib = tiny_dataset.train_images[:32]
        cached = ApproximateExecutor(trained_tiny_model, calib)
        uncached = ApproximateExecutor(
            trained_tiny_model, calib, reuse_plan_invariant_acts=False
        )
        plans = [
            ExecutionPlan.uniform(AccurateProduct()),
            ExecutionPlan.uniform(PerforatedProduct(2, True)),
            ExecutionPlan.uniform(PerforatedProduct(3, False)),
        ]
        for plan in plans:
            np.testing.assert_array_equal(
                cached.forward(images, plan), uncached.forward(images, plan)
            )
        assert cached.act_cache_misses == 1
        assert cached.act_cache_hits == len(plans) - 1
        assert uncached.act_cache_hits == 0 and uncached.act_cache_misses == 0
        # A different batch (same shape, different window) must re-quantize.
        cached.forward(tiny_dataset.test_images[8:16], plans[0])
        assert cached.act_cache_misses == 2

    def test_cross_plan_cache_across_batched_eval(self, trained_tiny_model, tiny_dataset):
        """Batched multi-plan evaluation quantizes each batch once: the LRU
        holds every batch of the eval set, so the second plan is all hits."""
        images = tiny_dataset.test_images[:12]
        calib = tiny_dataset.train_images[:32]
        executor = ApproximateExecutor(trained_tiny_model, calib)
        reference = ApproximateExecutor(
            trained_tiny_model, calib, reuse_plan_invariant_acts=False
        )
        plans = [
            ExecutionPlan.uniform(AccurateProduct()),
            ExecutionPlan.uniform(PerforatedProduct(2, True)),
        ]
        for plan in plans:
            np.testing.assert_array_equal(
                executor.logits(images, plan, batch_size=4),
                reference.logits(images, plan, batch_size=4),
            )
        assert executor.act_cache_misses == 3  # three batches, quantized once
        assert executor.act_cache_hits == 3  # all reused by the second plan

    def test_cross_plan_cache_with_distinct_live_batches(
        self, trained_tiny_model, tiny_dataset
    ):
        """Two independently allocated same-shape batches, both alive: the
        identity tokens must compare by referent identity (never ndarray
        ``==``) and each batch must be re-quantized."""
        calib = tiny_dataset.train_images[:32]
        executor = ApproximateExecutor(trained_tiny_model, calib)
        plan = ExecutionPlan.uniform(AccurateProduct())
        a = tiny_dataset.test_images[:4].copy()
        b = tiny_dataset.test_images[:4].copy()
        out_a = executor.forward(a, plan)
        out_b = executor.forward(b, plan)
        assert executor.act_cache_misses == 2 and executor.act_cache_hits == 0
        # Same batch again under another plan: now a genuine hit.
        np.testing.assert_array_equal(out_b, executor.forward(b, plan))
        assert executor.act_cache_hits == 1
        np.testing.assert_array_equal(
            out_a, ApproximateExecutor(trained_tiny_model, calib).forward(a, plan)
        )

    def test_batched_logits_match_single_batch(self, trained_tiny_model, tiny_dataset):
        """Persistent activation buffers must not leak state across batches."""
        images = tiny_dataset.test_images[:10]
        calib = tiny_dataset.train_images[:32]
        executor = ApproximateExecutor(trained_tiny_model, calib)
        plan = ExecutionPlan.uniform(PerforatedProduct(2, True))
        whole = executor.logits(images, plan, batch_size=10)
        batched = executor.logits(images, plan, batch_size=3)
        np.testing.assert_array_equal(whole, batched)
