"""Tests of the provenance layer: manifests, atomic writes, regression gate.

Covers the contracts ISSUE 6 pins:

* manifest round-trip — write → load → re-serialize is hash-stable, and a
  tampered payload is rejected;
* atomic read-modify-write of the shared bench ledger — an interrupt
  mid-write leaves the old document intact;
* the comparator's key-classification policy and its edge cases (missing
  golden section, floor tolerance boundary, Pareto front reordered but
  otherwise equal);
* `repro info --json` and the `verify-results` CLI (refresh determinism,
  perturb → fail → refresh → pass, SKIP_REGRESSION);
* manifest input digests reproducing the campaign ledger's context key and
  the trained-model cache stem.
"""

from __future__ import annotations

import dataclasses
import json
import glob
import os

import numpy as np
import pytest

from repro.cli import main
from repro.provenance import (
    Finding,
    RunManifest,
    canonical_json,
    compare_bench_ledgers,
    compare_golden_payloads,
    dataset_digest,
    load_json,
    model_digest,
    payload_digest,
    provenance_environment,
    record_run,
    update_json_atomic,
    write_json_atomic,
)
from repro.provenance.manifest import DIGEST_KEY, jsonable
from repro.provenance.regression import DEFAULT_TOLERANCE, classify_key


@pytest.fixture(autouse=True)
def _manifest_dir(tmp_path, monkeypatch):
    """Every test writes manifests under its own tmp dir, never the repo."""
    monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path / "manifests"))
    monkeypatch.delenv("SKIP_REGRESSION", raising=False)
    monkeypatch.delenv("REPRO_REGRESSION_TOL", raising=False)


class TestJsonable:
    def test_numpy_and_container_sanitization(self):
        @dataclasses.dataclass
        class Point:
            x: int
            y: float

        value = {
            "scalar": np.float64(1.5),
            "int": np.int32(7),
            "array": np.arange(4).reshape(2, 2),
            "tuple": (1, 2),
            "set": {"b", "a"},
            "dataclass": Point(1, 2.5),
            3: "int key",
        }
        out = jsonable(value)
        assert out["scalar"] == 1.5 and isinstance(out["scalar"], float)
        assert out["int"] == 7 and isinstance(out["int"], int)
        assert out["array"] == [[0, 1], [2, 3]]
        assert out["tuple"] == [1, 2]
        assert out["set"] == ["a", "b"]
        assert out["dataclass"] == {"x": 1, "y": 2.5}
        assert out["3"] == "int key"
        json.dumps(out)  # fully serializable

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": (1, 2)}) == canonical_json(
            {"a": [1, 2], "b": np.int64(1)}
        )


class TestManifestRoundTrip:
    def test_write_load_reserialize_hash_stable(self, tmp_path):
        manifest = RunManifest(
            kind="test",
            label="round/trip",
            inputs={"seed": np.int64(0), "digest": "abc"},
            outputs={"rows": [(1, 2.5), (3, 4.5)]},
            environment={"python": "x"},
        )
        path = manifest.write(str(tmp_path))
        assert manifest.path == path
        on_disk = load_json(path)
        assert on_disk["schema"] == "repro-run-manifest/v1"
        loaded = RunManifest.load(path)
        # Round trip: loading and re-serializing reproduces the digest.
        assert loaded.to_payload()[DIGEST_KEY] == on_disk[DIGEST_KEY]
        assert payload_digest(on_disk) == on_disk[DIGEST_KEY]

    def test_label_slug_in_filename(self, tmp_path):
        path = RunManifest(kind="bench", label="a b/c").write(str(tmp_path))
        assert os.path.basename(path) == "bench-a-b-c.json"

    def test_tampered_payload_rejected(self, tmp_path):
        path = RunManifest(kind="test", outputs={"v": 1}).write(str(tmp_path))
        payload = load_json(path)
        payload["outputs"]["v"] = 2
        with pytest.raises(ValueError, match="digest mismatch"):
            RunManifest.from_payload(payload)

    def test_record_run_success_and_env(self, tmp_path):
        with record_run("demo", directory=str(tmp_path), inputs={"a": 1}) as m:
            m.outputs["answer"] = 42
        loaded = RunManifest.load(os.path.join(str(tmp_path), "demo.json"))
        assert loaded.status == "ok"
        assert loaded.inputs == {"a": 1}
        assert loaded.outputs == {"answer": 42}
        assert loaded.wall_clock_s >= 0
        # The environment block is stamped automatically.
        assert loaded.environment["package"]["name"] == "repro-dac21"
        assert "numpy" in loaded.environment["packages"]

    def test_record_run_error_path_still_writes(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with record_run("demo", directory=str(tmp_path)) as m:
                m.inputs["seed"] = 3
                raise RuntimeError("boom")
        loaded = RunManifest.load(os.path.join(str(tmp_path), "demo.json"))
        assert loaded.status == "error"
        assert loaded.error == "RuntimeError: boom"
        assert loaded.inputs == {"seed": 3}

    def test_record_run_unwritable_dir_warns_not_crashes(
        self, tmp_path, monkeypatch, capsys
    ):
        # Provenance never crashes the run it describes: an unwritable
        # manifest directory degrades to a stderr warning on the success
        # path (a chmod-based fixture would not block root, so the write
        # failure is injected directly)...
        import repro.provenance.manifest as manifest_mod

        def exploding_write(path, payload, indent=2):
            raise OSError("read-only filesystem")

        monkeypatch.setattr(manifest_mod, "write_json_atomic", exploding_write)
        with record_run("demo", directory=str(tmp_path)) as m:
            m.outputs["answer"] = 42
        assert "could not write run manifest" in capsys.readouterr().err
        # ... and never masks the original exception on the error path.
        with pytest.raises(RuntimeError, match="boom"):
            with record_run("demo", directory=str(tmp_path)):
                raise RuntimeError("boom")
        assert "could not write run manifest" in capsys.readouterr().err

    def test_record_run_honors_env_dir(self, tmp_path, monkeypatch):
        target = tmp_path / "elsewhere"
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(target))
        with record_run("demo") as m:
            pass
        assert m.path == os.path.join(str(target), "demo.json")
        assert os.path.exists(m.path)


class TestAtomicLedgerUpdate:
    def test_merge_preserves_other_sections(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        update_json_atomic(path, "a", {"x": 1})
        update_json_atomic(path, "b", {"y": 2})
        merged = update_json_atomic(path, "a", {"x": 3})
        assert merged == {"a": {"x": 3}, "b": {"y": 2}}
        assert load_json(path) == merged

    def test_interrupt_mid_write_leaves_old_document(self, tmp_path, monkeypatch):
        path = str(tmp_path / "ledger.json")
        update_json_atomic(path, "a", {"x": 1})
        before = open(path, encoding="utf-8").read()

        import repro.provenance.manifest as manifest_mod

        def exploding_replace(src, dst):
            raise OSError("interrupted mid-rename")

        monkeypatch.setattr(manifest_mod.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="interrupted"):
            update_json_atomic(path, "b", {"y": 2})
        monkeypatch.undo()
        # Old document intact, no temp droppings left behind.
        assert open(path, encoding="utf-8").read() == before
        assert glob.glob(str(tmp_path / "*.tmp")) == []

    def test_corrupt_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{truncated")
        assert update_json_atomic(path, "a", {"x": 1}) == {"a": {"x": 1}}

    def test_atomic_write_honors_umask(self, tmp_path):
        # mkstemp creates 0600 temp files; the rename must not leak that
        # onto results files — they stay umask-default readable.
        path = str(tmp_path / "out.json")
        old_umask = os.umask(0o022)
        try:
            write_json_atomic(path, {"v": 1})
        finally:
            os.umask(old_umask)
        assert os.stat(path).st_mode & 0o777 == 0o644

    def test_write_json_atomic_is_deterministic(self, tmp_path):
        payload = {"b": 2, "a": [1, 2]}
        first, second = str(tmp_path / "1.json"), str(tmp_path / "2.json")
        write_json_atomic(first, dict(reversed(list(payload.items()))))
        write_json_atomic(second, payload)
        assert open(first, "rb").read() == open(second, "rb").read()


class TestComparatorPolicy:
    def test_classify_key(self):
        assert classify_key("wall_clock_s") == "ignore"
        assert classify_key("reuse_time") == "ignore"
        assert classify_key("worker_private_kib_plain") == "ignore"
        assert classify_key("speedup_vs_serial") == "floor"
        assert classify_key("payload_reduction") == "floor"
        assert classify_key("throughput_ips") == "floor"
        assert classify_key("plain_payload_bytes") == "band"
        assert classify_key("accuracy_loss") == "exact"
        assert classify_key("front_size") == "exact"

    def test_bare_index_key_inherits_parent_policy(self):
        # Worker counts under speedup_vs_serial carry no policy of their
        # own; they are floors because their parent is.
        assert classify_key("4", parent="floor") == "floor"
        assert classify_key("1", parent="ignore") == "ignore"
        assert classify_key("4") == "exact"  # no parent: default exact
        # A named key never inherits — its own policy wins.
        assert classify_key("accuracy_loss", parent="floor") == "exact"

    def test_speedup_vs_serial_children_are_floors_not_exact(self):
        # The committed golden's shape: timing-derived speedups keyed by
        # worker count.  A rerun jitters these values; they are held to the
        # floor policy, never to exact match — and ``speedup_vs_serial``
        # additionally carries an *absolute* floor of 1.0 (minus the 10 %
        # noise margin): parallel must degrade to serial rather than lose
        # to it, regardless of what a historical golden recorded.
        golden = {
            "dse_parallel_campaign": {
                "evaluations": 60,
                "speedup_vs_serial": {"1": 1.0, "4": 0.5177858712557567},
            }
        }
        fresh_near_serial = {
            "dse_parallel_campaign": {
                "evaluations": 60,
                "speedup_vs_serial": {"1": 1.0, "4": 0.95},
            }
        }
        # Sub-unity golden: exempt from the relative floor, and 0.95 clears
        # the absolute floor's noise margin — a degraded-to-serial rerun of
        # a box that once recorded 0.52x passes.
        assert compare_bench_ledgers(golden, fresh_near_serial, 0.5).ok
        # A fresh run that truly loses to serial fails the absolute floor
        # even though it *improves* on the (historically broken) golden.
        fresh_lost = {
            "dse_parallel_campaign": {
                "evaluations": 60,
                "speedup_vs_serial": {"1": 1.0, "4": 0.61},
            }
        }
        report = compare_bench_ledgers(golden, fresh_lost, 0.5)
        assert [f.kind for f in report.failures] == ["floor"]
        assert "lost to serial" in report.failures[0].message
        # A >=1.0 golden child still enforces its floor...
        golden["dse_parallel_campaign"]["speedup_vs_serial"]["4"] = 2.0
        fresh_regressed = {
            "dse_parallel_campaign": {
                "evaluations": 60,
                "speedup_vs_serial": {"1": 1.0, "4": 0.9},
            }
        }
        report = compare_bench_ledgers(golden, fresh_regressed, 0.5)
        assert [f.kind for f in report.failures] == ["floor"]
        assert report.failures[0].path.endswith("speedup_vs_serial.4")
        # ... and non-timing siblings stay exact.
        fresh_perturbed = {
            "dse_parallel_campaign": {
                "evaluations": 61,
                "speedup_vs_serial": {"1": 1.0, "4": 2.0},
            }
        }
        report = compare_bench_ledgers(golden, fresh_perturbed, 0.5)
        assert [f.kind for f in report.failures] == ["exact"]

    def test_speedup_absolute_floor_boundary(self):
        # The absolute floor's noise margin must admit exactly the x0.9
        # jitter the self-consistency test applies to a 1.0 golden...
        golden = {"s": {"speedup_vs_serial": {"1": 1.0}}}
        fresh = {"s": {"speedup_vs_serial": {"1": 0.9}}}
        assert compare_bench_ledgers(golden, fresh, DEFAULT_TOLERANCE).ok
        # ... and reject anything below it.
        fresh = {"s": {"speedup_vs_serial": {"1": 0.89}}}
        report = compare_bench_ledgers(golden, fresh, DEFAULT_TOLERANCE)
        assert not report.ok
        assert "lost to serial" in report.failures[0].message

    def test_committed_golden_ledger_passes_against_itself_jittered(self):
        # End-to-end guard on the real committed baseline: replaying it
        # with every timing-derived value jittered must stay green, i.e.
        # a bench rerun on the same code cannot fail the gate spuriously.
        golden = load_json(os.path.join("results", "golden", "BENCH_engine.json"))

        def jitter(node):
            if isinstance(node, dict):
                return {
                    key: (
                        value * 0.9
                        if isinstance(value, float)
                        and classify_key(key, "floor") != "exact"
                        else jitter(value)
                    )
                    for key, value in node.items()
                }
            return node

        assert compare_bench_ledgers(golden, jitter(golden), DEFAULT_TOLERANCE).ok

    def test_missing_golden_section_fails(self):
        report = compare_bench_ledgers({"gone": {"v": 1}}, {}, 0.5)
        assert not report.ok
        assert report.failures[0].kind == "missing"

    def test_extra_fresh_section_warns(self):
        report = compare_bench_ledgers({}, {"new": {"v": 1}}, 0.5)
        assert report.ok
        assert report.warnings[0].kind == "unbaselined"
        assert "bench-refresh" in report.warnings[0].message

    def test_floor_tolerance_boundary(self):
        golden = {"s": {"speedup": 2.0}}
        # floor = 2.0 * (1 - 0.5) = 1.0; exactly-at-floor passes...
        assert compare_bench_ledgers(golden, {"s": {"speedup": 1.0}}, 0.5).ok
        # ... just below fails ...
        report = compare_bench_ledgers(golden, {"s": {"speedup": 0.999}}, 0.5)
        assert [f.kind for f in report.failures] == ["floor"]
        # ... and improvements never fail.
        assert compare_bench_ledgers(golden, {"s": {"speedup": 9.0}}, 0.5).ok

    def test_sub_unity_golden_floor_not_enforced(self):
        # A 0.54x "speedup" baselined on a starved 1-cpu box is an
        # environment artifact; fresh runs must not be held to it.
        golden = {"s": {"speedup": 0.54}}
        assert compare_bench_ledgers(golden, {"s": {"speedup": 0.1}}, 0.5).ok

    def test_band_policy_for_bytes(self):
        golden = {"s": {"shared_payload_bytes": 1000}}
        assert compare_bench_ledgers(
            golden, {"s": {"shared_payload_bytes": 1400}}, 0.5
        ).ok
        report = compare_bench_ledgers(
            golden, {"s": {"shared_payload_bytes": 1600}}, 0.5
        )
        assert [f.kind for f in report.failures] == ["band"]

    def test_ignored_keys_never_fail(self):
        golden = {"s": {"wall_clock_s": 1.0, "reuse_time": 2.0, "v": 3}}
        fresh = {"s": {"wall_clock_s": 99.0, "v": 3}}  # reuse_time missing too
        assert compare_bench_ledgers(golden, fresh, 0.5).ok

    def test_exact_value_perturbation_fails(self):
        golden = {"s": {"accuracy_loss": 0.25}}
        report = compare_bench_ledgers(golden, {"s": {"accuracy_loss": 0.26}}, 0.5)
        assert [f.kind for f in report.failures] == ["exact"]

    def test_type_change_fails(self):
        report = compare_bench_ledgers({"s": {"v": "a"}}, {"s": {"v": 1}}, 0.5)
        assert [f.kind for f in report.failures] == ["type"]

    def test_front_reordered_but_equal_passes(self):
        a = {"label": "A", "energy_nj": 1.0, "accuracy": 0.9}
        b = {"label": "B", "energy_nj": 2.0, "accuracy": 0.95}
        golden = {"front": [a, b], "front_size": 2}
        fresh = {"front": [b, a], "front_size": 2}
        assert compare_golden_payloads("pareto_front", golden, fresh) == []

    def test_front_perturbed_value_fails(self):
        a = {"label": "A", "energy_nj": 1.0}
        golden = {"front": [a]}
        fresh = {"front": [{"label": "A", "energy_nj": 1.0001}]}
        findings = compare_golden_payloads("pareto_front", golden, fresh)
        assert [f.severity for f in findings] == ["fail"]
        assert "front" in findings[0].path

    def test_finding_describe(self):
        finding = Finding("sec", "a.b", "exact", "fail", "changed")
        assert finding.describe() == "[fail] sec:a.b — changed"

    def test_report_payload_shape(self):
        report = compare_bench_ledgers({"gone": {}}, {"new": {}}, 0.25)
        payload = report.to_payload()
        assert payload["ok"] is False
        assert payload["tolerance"] == 0.25
        assert len(payload["failures"]) == 1 and len(payload["warnings"]) == 1


class TestProvenanceEnvironment:
    def test_environment_block(self):
        env = provenance_environment()
        assert env["package"]["name"] == "repro-dac21"
        import repro

        assert env["package"]["version"] == repro.__version__
        assert env["cpu_count"] >= 1
        # Import-failure reasons are recorded, not swallowed (satellite:
        # numba unavailability must be explained in every bench manifest).
        for name in ("numpy", "scipy", "numba"):
            probe = env["packages"][name]
            if probe["available"]:
                assert probe["version"]
            else:
                assert probe["reason"]
        backends = {row["name"] for row in env["engine_backends"]}
        assert {"numpy", "numba", "lowmem"} <= backends
        assert env["seed_defaults"]["campaign_rng_seed"] == 0

    def test_numpy_probe_available(self):
        env = provenance_environment()
        assert env["packages"]["numpy"]["available"] is True
        assert env["packages"]["numpy"]["version"] == np.__version__


class TestInfoCommand:
    def test_info_json_machine_readable(self, capsys):
        assert main(["info", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["package"]["name"] == "repro-dac21"
        assert "packages" in payload and "engine_backends" in payload

    def test_info_text_mode(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Probed packages" in out
        assert "Engine backends" in out
        assert "seed defaults" in out

    def test_unknown_flag_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["info", "--bogus"])
        assert excinfo.value.code == 2


class TestVerifyResultsCli:
    """The gate end to end, on a synthetic bench ledger (--skip-workload
    keeps the expensive golden workload out of tier 1; `make check` runs
    it for real)."""

    @staticmethod
    def _dirs(tmp_path):
        results = tmp_path / "results"
        golden = tmp_path / "golden"
        results.mkdir()
        return str(results), str(golden)

    @staticmethod
    def _args(results, golden, *extra):
        return [
            "verify-results",
            "--results",
            results,
            "--golden",
            golden,
            "--skip-workload",
            *extra,
        ]

    def test_missing_golden_dir_is_usage_error(self, tmp_path, capsys):
        results, golden = self._dirs(tmp_path)
        assert main(self._args(results, golden)) == 2
        assert "bench-refresh" in capsys.readouterr().err

    def test_skip_regression_env_short_circuits(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("SKIP_REGRESSION", "1")
        results, golden = self._dirs(tmp_path)
        assert main(self._args(results, golden)) == 0
        assert "skipped" in capsys.readouterr().out

    def test_negative_tolerance_rejected(self, tmp_path):
        results, golden = self._dirs(tmp_path)
        assert main(self._args(results, golden, "--tolerance", "-1")) == 2

    def test_refresh_verify_perturb_refresh_cycle(self, tmp_path, capsys):
        results, golden = self._dirs(tmp_path)
        ledger_path = os.path.join(results, "BENCH_engine.json")
        write_json_atomic(
            ledger_path,
            {"dse_search": {"greedy": {"evaluations": 21, "wall_clock_s": 1.0}}},
        )
        # Baseline, then verify green.
        assert main(self._args(results, golden, "--refresh")) == 0
        assert "refreshed" in capsys.readouterr().out
        assert main(self._args(results, golden)) == 0
        assert "PASS" in capsys.readouterr().out
        # Perturb a deterministic value -> FAIL, exit 1.
        update_json_atomic(
            ledger_path, "dse_search", {"greedy": {"evaluations": 99, "wall_clock_s": 2.0}}
        )
        assert main(self._args(results, golden)) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "bench-refresh" in captured.err
        # Deliberate re-baseline -> green again.
        assert main(self._args(results, golden, "--refresh")) == 0
        capsys.readouterr()
        assert main(self._args(results, golden)) == 0
        assert "PASS" in capsys.readouterr().out

    def test_refresh_is_deterministic(self, tmp_path, capsys):
        results, golden = self._dirs(tmp_path)
        write_json_atomic(
            os.path.join(results, "BENCH_engine.json"),
            {"b_section": {"v": 1}, "a_section": {"w": 2}},
        )
        golden_path = os.path.join(golden, "BENCH_engine.json")
        assert main(self._args(results, golden, "--refresh")) == 0
        first = open(golden_path, "rb").read()
        assert main(self._args(results, golden, "--refresh")) == 0
        second = open(golden_path, "rb").read()
        assert first == second

    def test_throughput_regression_beyond_tolerance_fails(self, tmp_path, capsys):
        results, golden = self._dirs(tmp_path)
        ledger_path = os.path.join(results, "BENCH_engine.json")
        write_json_atomic(ledger_path, {"engine": {"lut": {"speedup": 6.0}}})
        assert main(self._args(results, golden, "--refresh")) == 0
        capsys.readouterr()
        # Within the default 0.5 band: 4.0 >= 6.0 * 0.5 -> PASS.
        write_json_atomic(ledger_path, {"engine": {"lut": {"speedup": 4.0}}})
        assert main(self._args(results, golden)) == 0
        capsys.readouterr()
        # Halved-plus throughput: 2.0 < 3.0 -> FAIL.
        write_json_atomic(ledger_path, {"engine": {"lut": {"speedup": 2.0}}})
        assert main(self._args(results, golden)) == 1

    def test_json_output(self, tmp_path, capsys):
        results, golden = self._dirs(tmp_path)
        write_json_atomic(
            os.path.join(results, "BENCH_engine.json"), {"s": {"v": 1}}
        )
        assert main(self._args(results, golden, "--refresh")) == 0
        capsys.readouterr()
        assert main(self._args(results, golden, "--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["failures"] == []

    def test_missing_fresh_ledger_fails(self, tmp_path, capsys):
        results, golden = self._dirs(tmp_path)
        write_json_atomic(
            os.path.join(results, "BENCH_engine.json"), {"s": {"v": 1}}
        )
        assert main(self._args(results, golden, "--refresh")) == 0
        os.unlink(os.path.join(results, "BENCH_engine.json"))
        capsys.readouterr()
        assert main(self._args(results, golden)) == 1
        assert "make engine dse" in capsys.readouterr().out

    def test_verify_writes_its_own_manifest(self, tmp_path, monkeypatch):
        manifest_dir = tmp_path / "manifests"
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(manifest_dir))
        results, golden = self._dirs(tmp_path)
        write_json_atomic(
            os.path.join(results, "BENCH_engine.json"), {"s": {"v": 1}}
        )
        assert main(self._args(results, golden, "--refresh")) == 0
        assert main(self._args(results, golden)) == 0
        loaded = RunManifest.load(str(manifest_dir / "verify-results.json"))
        assert loaded.status == "ok"
        assert loaded.outputs["ok"] is True


class TestGoldenWorkloadHelpers:
    def test_write_and_verify_goldens_round_trip(self, tmp_path):
        from repro.provenance.workload import verify_goldens, write_goldens

        payloads = {
            "inputs.json": {"model_digest": "abc", "context_key": "def"},
            "accuracy_table.json": {"rows": [{"m": 1, "accuracy": 0.5}]},
            "pareto_front.json": {"front": [{"label": "A", "energy_nj": 1.0}]},
        }
        write_goldens(payloads, str(tmp_path))
        assert verify_goldens(payloads, str(tmp_path), DEFAULT_TOLERANCE) == []
        # A reordered front still verifies; a perturbed digest does not.
        reordered = dict(payloads)
        reordered["pareto_front.json"] = {
            "front": list(reversed(payloads["pareto_front.json"]["front"]))
        }
        assert verify_goldens(reordered, str(tmp_path), DEFAULT_TOLERANCE) == []
        tampered = dict(payloads)
        tampered["inputs.json"] = {"model_digest": "zzz", "context_key": "def"}
        findings = verify_goldens(tampered, str(tmp_path), DEFAULT_TOLERANCE)
        assert findings and all(f.severity == "fail" for f in findings)

    def test_missing_golden_file_fails_with_hint(self, tmp_path):
        from repro.provenance.workload import verify_goldens

        findings = verify_goldens(
            {"inputs.json": {"model_digest": "abc"}}, str(tmp_path)
        )
        assert [f.kind for f in findings] == ["missing"]
        assert "bench-refresh" in findings[0].message


class TestDigestAlignment:
    """Manifest input digests reproduce the ledger / cache identities."""

    def test_model_and_dataset_digests_deterministic_and_sensitive(
        self, trained_tiny_model, tiny_dataset
    ):
        assert model_digest(trained_tiny_model) == model_digest(trained_tiny_model)
        assert dataset_digest(tiny_dataset) == dataset_digest(tiny_dataset)
        state = trained_tiny_model.state_dict()
        name = sorted(state)[0]
        perturbed = {k: v.copy() for k, v in state.items()}
        perturbed[name].flat[0] += 1.0

        class Fake:
            def state_dict(self):
                return perturbed

        assert model_digest(Fake()) != model_digest(trained_tiny_model)

    def test_trained_cache_stem_matches_cache_paths(self, tmp_path):
        from repro.simulation.campaign import (
            TrainedModelCache,
            TrainingSettings,
            trained_cache_stem,
        )

        settings = TrainingSettings()
        cache = TrainedModelCache(cache_dir=str(tmp_path))
        stem = trained_cache_stem("vgg13", "synthetic-cifar10", settings)
        npz_path, meta_path = cache._paths("vgg13", "synthetic-cifar10", settings)
        assert os.path.basename(npz_path) == f"{stem}.npz"
        assert os.path.basename(meta_path) == f"{stem}.json"
        assert f"seed{settings.seed}" in stem

    def test_campaign_context_key_matches_ledger_records(
        self, trained_tiny_model, tiny_dataset, tmp_path
    ):
        from repro.dse import CampaignLedger, run_campaign
        from repro.dse.engine import front_payload
        from repro.simulation.campaign import TrainedModel

        trained = TrainedModel(
            name="vgg13",
            dataset_name=tiny_dataset.name,
            model=trained_tiny_model,
            float_accuracy=0.0,
        )
        ledger = CampaignLedger(path=str(tmp_path / "ledger"))
        result = run_campaign(
            trained,
            tiny_dataset,
            strategy="greedy",
            max_loss=5.0,
            budget_evals=4,
            max_eval_images=32,
            calibration_images=32,
            array_size=16,
            ledger=ledger,
        )
        context_key = result.stats["context_key"]
        record_paths = glob.glob(str(tmp_path / "ledger" / "*.json"))
        assert record_paths
        for path in record_paths:
            record = load_json(path)
            # Every ledger record of the campaign is keyed under the very
            # context digest the run manifest embeds.
            assert record["context"] == context_key
        # And the front payload carries the ledger record keys.
        for point in front_payload(result):
            assert set(point) == {
                "label",
                "energy_nj",
                "accuracy",
                "accuracy_loss",
                "ledger_key",
            }
