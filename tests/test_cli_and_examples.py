"""Tests of the CLI and smoke tests of the fast example scripts."""

import runpy
import sys

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_hardware_command(self, capsys):
        assert main(["hardware", "--array-sizes", "16", "--perforations", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "norm. power" in out
        assert out.count("\n") >= 4  # title + header + separator + 2 rows

    def test_error_model_command(self, capsys):
        assert main(["error-model", "--m", "1", "--taps", "32", "--trials", "500"]) == 0
        out = capsys.readouterr().out
        assert "ours (+V)" in out and "w/o V" in out

    def test_accuracy_command_small(self, capsys, tmp_path):
        assert (
            main(
                [
                    "accuracy",
                    "--model",
                    "vgg13",
                    "--classes",
                    "10",
                    "--epochs",
                    "1",
                    "--perforations",
                    "1",
                    "--max-eval-images",
                    "16",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ours loss" in out

    def test_invalid_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "--model", "alexnet"])

    def test_backends_command(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("numpy", "numba", "lowmem"):
            assert name in out
        assert "available" in out

    def test_accuracy_command_with_engine_backend(self, capsys, tmp_path):
        assert (
            main(
                [
                    "accuracy",
                    "--model",
                    "vgg13",
                    "--classes",
                    "10",
                    "--epochs",
                    "1",
                    "--perforations",
                    "1",
                    "--max-eval-images",
                    "16",
                    "--cache-dir",
                    str(tmp_path),
                    "--engine-backend",
                    "lowmem",
                ]
            )
            == 0
        )
        assert "ours loss" in capsys.readouterr().out

    def test_invalid_engine_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "--engine-backend", "gpu"])

    def test_no_prefix_reuse_flag(self, capsys, tmp_path):
        args = build_parser().parse_args(["accuracy", "--no-prefix-reuse"])
        assert args.no_prefix_reuse is True
        assert build_parser().parse_args(["accuracy"]).no_prefix_reuse is False
        # The escape hatch runs end to end (reuse is bit-exact, so the
        # printed table is the same either way).
        assert (
            main(
                [
                    "accuracy",
                    "--model",
                    "vgg13",
                    "--classes",
                    "10",
                    "--epochs",
                    "1",
                    "--perforations",
                    "1",
                    "--max-eval-images",
                    "16",
                    "--cache-dir",
                    str(tmp_path),
                    "--no-prefix-reuse",
                ]
            )
            == 0
        )
        assert "ours loss" in capsys.readouterr().out


class TestExamples:
    """The fast examples must run end to end (the training-heavy ones are
    exercised indirectly through the campaign tests and benches)."""

    @pytest.mark.parametrize(
        "script",
        [
            "examples/quickstart.py",
            "examples/accelerator_design_space.py",
            "examples/engine_backends.py",
        ],
    )
    def test_example_runs(self, script, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", [script])
        runpy.run_path(script, run_name="__main__")
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 5
