"""Tests of the CLI and smoke tests of the fast example scripts."""

import runpy
import sys

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_hardware_command(self, capsys):
        assert main(["hardware", "--array-sizes", "16", "--perforations", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "norm. power" in out
        assert out.count("\n") >= 4  # title + header + separator + 2 rows

    def test_error_model_command(self, capsys):
        assert main(["error-model", "--m", "1", "--taps", "32", "--trials", "500"]) == 0
        out = capsys.readouterr().out
        assert "ours (+V)" in out and "w/o V" in out

    def test_accuracy_command_small(self, capsys, tmp_path):
        assert (
            main(
                [
                    "accuracy",
                    "--model",
                    "vgg13",
                    "--classes",
                    "10",
                    "--epochs",
                    "1",
                    "--perforations",
                    "1",
                    "--max-eval-images",
                    "16",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ours loss" in out

    def test_invalid_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "--model", "alexnet"])

    def test_backends_command(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("numpy", "numba", "lowmem"):
            assert name in out
        assert "available" in out

    def test_accuracy_command_with_engine_backend(self, capsys, tmp_path):
        assert (
            main(
                [
                    "accuracy",
                    "--model",
                    "vgg13",
                    "--classes",
                    "10",
                    "--epochs",
                    "1",
                    "--perforations",
                    "1",
                    "--max-eval-images",
                    "16",
                    "--cache-dir",
                    str(tmp_path),
                    "--engine-backend",
                    "lowmem",
                ]
            )
            == 0
        )
        assert "ours loss" in capsys.readouterr().out

    def test_invalid_engine_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "--engine-backend", "gpu"])

    def test_no_prefix_reuse_flag(self, capsys, tmp_path):
        args = build_parser().parse_args(["accuracy", "--no-prefix-reuse"])
        assert args.no_prefix_reuse is True
        assert build_parser().parse_args(["accuracy"]).no_prefix_reuse is False
        # The escape hatch runs end to end (reuse is bit-exact, so the
        # printed table is the same either way).
        assert (
            main(
                [
                    "accuracy",
                    "--model",
                    "vgg13",
                    "--classes",
                    "10",
                    "--epochs",
                    "1",
                    "--perforations",
                    "1",
                    "--max-eval-images",
                    "16",
                    "--cache-dir",
                    str(tmp_path),
                    "--no-prefix-reuse",
                ]
            )
            == 0
        )
        assert "ours loss" in capsys.readouterr().out


class TestBackendsJson:
    def test_backends_json_machine_readable(self, capsys):
        import json

        assert main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in payload]
        assert {"numpy", "numba", "lowmem"} <= set(names)
        defaults = [entry for entry in payload if entry["default"]]
        assert len(defaults) == 1 and defaults[0]["name"] == "numpy"
        for entry in payload:
            assert set(entry) == {
                "name",
                "available",
                "default",
                "description",
                "unavailable_reason",
                "fused_multi_plan",
            }
            if not entry["available"]:
                assert entry["unavailable_reason"]
        fused = {entry["name"]: entry["fused_multi_plan"] for entry in payload}
        assert fused["numpy"] is True
        assert fused["numba"] is True
        assert fused["lowmem"] is False


class TestCliErrorPaths:
    """Unknown backend/strategy names exit non-zero with a clear message."""

    def test_dse_unknown_strategy(self, capsys):
        assert main(["dse", "--strategy", "simulated-annealing"]) == 2
        err = capsys.readouterr().err
        assert "unknown search strategy" in err
        assert "greedy" in err  # the message names the registered options

    def test_dse_unknown_backend(self, capsys):
        assert main(["dse", "--engine-backend", "gpu"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine backend" in err
        assert "numpy" in err

    def test_sweep_unknown_backend(self, capsys):
        assert main(["sweep", "--engine-backend", "tpu"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine backend" in err

    def test_dse_subsample_and_cap_mutually_exclusive(self, capsys):
        assert (
            main(["dse", "--subsample-eval", "16", "--max-eval-images", "32"]) == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err

    def test_dse_non_positive_subsample_rejected(self, capsys):
        assert main(["dse", "--subsample-eval", "-3"]) == 2
        assert "must be positive" in capsys.readouterr().err
        assert main(["dse", "--subsample-eval", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["sweep", "table3", "dse"])
    def test_invalid_workers_rejected_uniformly(self, command, capsys):
        """One --workers contract across every evaluating command: values
        below 1 exit 2 with the same clear message."""
        for bad in ("0", "-4"):
            assert main([command, "--workers", bad]) == 2
            err = capsys.readouterr().err
            assert "--workers must be a positive integer" in err
            assert bad in err


class TestSweepCommand:
    def test_sweep_command_small(self, capsys, tmp_path):
        assert (
            main(
                [
                    "sweep",
                    "--models",
                    "vgg13",
                    "--classes",
                    "10",
                    "--epochs",
                    "1",
                    "--perforations",
                    "1",
                    "--max-eval-images",
                    "16",
                    "--workers",
                    "1",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ours loss" in out and "vgg13" in out

    def test_table3_command_small(self, capsys, tmp_path):
        """table3 runs the multi-model session end to end (subset config)."""
        assert (
            main(
                [
                    "table3",
                    "--models",
                    "vgg13",
                    "--classes",
                    "10",
                    "--epochs",
                    "1",
                    "--perforations",
                    "1",
                    "--max-eval-images",
                    "16",
                    "--workers",
                    "2",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Table III" in out and "average" in out and "vgg13" in out


class TestDseCommand:
    def test_dse_greedy_end_to_end_and_resume(self, capsys, tmp_path):
        import json

        args = [
            "dse",
            "--model",
            "vgg13",
            "--classes",
            "10",
            "--epochs",
            "1",
            "--strategy",
            "greedy",
            "--max-loss",
            "0.5",
            "--budget-evals",
            "12",
            "--max-eval-images",
            "16",
            "--seed",
            "0",
            "--cache-dir",
            str(tmp_path),
            "--ledger",
            str(tmp_path / "ledger"),
            "--json",
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["stats"]["evaluations"] <= 12
        assert first["stats"]["ledger_replays"] == 0
        assert first["front"], "campaign produced no front"
        for point in first["front"]:
            assert {"label", "energy_nj", "accuracy", "accuracy_loss"} <= set(point)

        # Re-running with --resume replays every recorded evaluation and
        # never re-evaluates a plan: fresh evals + replays == distinct points.
        assert main(args + ["--resume"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["stats"]["ledger_replays"] == first["stats"]["evaluations"]
        assert (
            resumed["stats"]["ledger_replays"] + resumed["stats"]["evaluations"]
            == resumed["stats"]["points"]
        )
        assert resumed["baseline_accuracy"] == first["baseline_accuracy"]

    def test_dse_seed_threads_dataset_and_subsampling(self, capsys, tmp_path):
        """--seed reaches the synthetic dataset (name suffix) and the eval
        subsample; the same seed reproduces the identical campaign."""
        import json

        args = [
            "dse",
            "--classes",
            "10",
            "--epochs",
            "1",
            "--strategy",
            "greedy",
            "--budget-evals",
            "4",
            "--subsample-eval",
            "16",
            "--seed",
            "7",
            "--cache-dir",
            str(tmp_path),
            "--no-ledger",
            "--json",
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert "-seed" in first["dataset"]
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["front"] == second["front"]
        assert first["baseline_accuracy"] == second["baseline_accuracy"]

    def test_dse_workers_matches_serial_front(self, capsys, tmp_path):
        """--workers N is bit-exact with the serial path: identical fronts."""
        import json

        args = [
            "dse",
            "--classes",
            "10",
            "--epochs",
            "1",
            "--strategy",
            "greedy",
            "--budget-evals",
            "8",
            "--max-eval-images",
            "16",
            "--seed",
            "0",
            "--cache-dir",
            str(tmp_path),
            "--no-ledger",
            "--json",
        ]
        assert main(args + ["--workers", "1"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["front"] == serial["front"]
        assert parallel["baseline_accuracy"] == serial["baseline_accuracy"]
        # The request survives verbatim in the stats; the effective pool
        # size is clamped to the schedulable CPUs (degrade-to-serial).
        from repro.runtime.sizing import resolve_worker_count

        assert parallel["stats"]["requested_workers"] == 2
        assert parallel["stats"]["workers"] == resolve_worker_count(2)

    def test_dse_multi_model_shared_service(self, capsys, tmp_path):
        """--models runs one campaign per model on one shared service."""
        import json

        args = [
            "dse",
            "--models",
            "vgg13",
            "resnet44",
            "--classes",
            "10",
            "--epochs",
            "1",
            "--strategy",
            "greedy",
            "--budget-evals",
            "4",
            "--max-eval-images",
            "16",
            "--seed",
            "0",
            "--cache-dir",
            str(tmp_path),
            "--no-ledger",
            "--json",
        ]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["model"] for entry in payload["models"]] == ["vgg13", "resnet44"]
        for entry in payload["models"]:
            assert entry["front"], f"no front for {entry['model']}"
            assert entry["stats"]["evaluations"] <= 4


class TestExamples:
    """The fast examples must run end to end (the training-heavy ones are
    exercised indirectly through the campaign tests and benches)."""

    @pytest.mark.parametrize(
        "script",
        [
            "examples/quickstart.py",
            "examples/accelerator_design_space.py",
            "examples/engine_backends.py",
        ],
    )
    def test_example_runs(self, script, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", [script])
        runpy.run_path(script, run_name="__main__")
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 5
