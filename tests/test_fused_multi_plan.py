"""Fused multi-plan path: kernels, backends, executor, scheduler, service.

The acceptance criterion of the fused sweep is *bit-exactness*: collapsing
the outer plan loop into one batched backend launch must never change a
number, at any layer of the stack.  This suite pins that end to end:

* :class:`~repro.core.product_kernels.MultiPlanKernel` — stacked and
  shared launches equal the per-plan kernels on randomized mixed stacks
  (accurate / perforated ± control variate / LUT / fallback);
* ``QuantizedLinearOp.output_real_stacked`` — equals the tiled per-plan
  :meth:`output_real` bit for bit;
* ``EngineBackend.compile_multi`` — the capability-flag contract, the
  numba kernel bodies under a stub JIT, and the broken-JIT fallback;
* ``ApproximateExecutor.forward_many`` — randomized property tests against
  the per-plan ``forward`` loop, including duplicate plans, single-plan
  and zero-shared-prefix sets, plus the fused-launch counters;
* :func:`~repro.runtime.scheduling.plan_group_slices` — depth-aware group
  cuts land on divergence-family boundaries;
* the service / ``plan_sweep`` — fused and unfused sweeps agree at every
  worker count, and the fused sweep reproduces the committed golden
  accuracy table byte-exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backends import (
    BackendUnavailableError,
    EngineBackend,
    NumpyBackend,
    get_backend,
)
from repro.core.control_variate import ControlVariate
from repro.core.product_kernels import (
    AccurateKernel,
    CallbackKernel,
    LUTKernel,
    MultiPlanKernel,
    PerforatedKernel,
)
from repro.quantization.qlayers import QuantizedLinearOp
from repro.quantization.schemes import QuantParams
from repro.runtime.scheduling import (
    model_mac_names,
    plan_group_slices,
    shared_prefix_depths,
)
from repro.simulation.campaign import TrainedModel, plan_sweep
from repro.simulation.inference import (
    AccurateProduct,
    ApproximateExecutor,
    ExecutionPlan,
    LUTProduct,
    PerforatedProduct,
)

pytestmark = pytest.mark.engine


def _random_lut(rng, exact: bool = False) -> np.ndarray:
    lut = np.arange(256, dtype=np.int64)[:, None] * np.arange(256, dtype=np.int64)
    if exact:
        return lut
    return lut + rng.integers(-200, 200, size=(256, 256))


def _mixed_kernels(weights: np.ndarray, rng) -> list:
    """One of every fusable kind plus a fallback, against shared weights."""
    cv = ControlVariate.from_weight_matrix(weights)
    from repro.baselines.weight_oriented import WeightOrientedProduct

    fallback_model = WeightOrientedProduct(1, 3, threshold=128)
    return [
        AccurateKernel(weights),
        PerforatedKernel(weights, 2, cv),
        PerforatedKernel(weights, 2, None),
        PerforatedKernel(weights, 3, cv),
        PerforatedKernel(weights, 0, cv),
        LUTKernel(weights, _random_lut(rng, exact=True)),
        LUTKernel(weights, _random_lut(rng)),
        CallbackKernel(fallback_model, weights, cv),
    ]


class TestMultiPlanKernel:
    def test_stacked_and_shared_parity_randomized(self, rng):
        for trial in range(5):
            taps = int(rng.integers(3, 20))
            filters = int(rng.integers(1, 8))
            n = int(rng.integers(1, 12))
            weights = rng.integers(0, 256, size=(taps, filters), dtype=np.uint8)
            kernels = _mixed_kernels(weights, rng)
            multi = MultiPlanKernel(kernels)
            assert multi.plans == len(kernels)

            shared_act = rng.integers(0, 256, size=(n, taps), dtype=np.uint8)
            expected = np.concatenate(
                [np.asarray(k(shared_act), dtype=np.float64) for k in kernels]
            )
            np.testing.assert_array_equal(
                multi.product_sums_multi(shared_act, shared=True), expected
            )

            stacked_act = rng.integers(
                0, 256, size=(len(kernels) * n, taps), dtype=np.uint8
            )
            expected = np.concatenate(
                [
                    np.asarray(k(stacked_act[p * n : (p + 1) * n]), dtype=np.float64)
                    for p, k in enumerate(kernels)
                ]
            )
            np.testing.assert_array_equal(
                multi.product_sums_multi(stacked_act), expected
            )

    def test_error_matrix_cap_falls_back_per_block_bit_exact(self, rng):
        weights = rng.integers(0, 256, size=(6, 4), dtype=np.uint8)
        kernels = [LUTKernel(weights, _random_lut(rng)) for _ in range(3)]
        capped = MultiPlanKernel(kernels, max_error_matrix_bytes=0)
        assert capped._stacked_error is None
        uncapped = MultiPlanKernel(kernels)
        assert uncapped._stacked_error is not None
        act = rng.integers(0, 256, size=(9, 6), dtype=np.uint8)
        np.testing.assert_array_equal(
            capped.product_sums_multi(act, shared=True),
            uncapped.product_sums_multi(act, shared=True),
        )

    def test_shared_kernel_instances_share_one_error_matrix_slot(self, rng):
        """Suffix layers reuse one kernel object across blocks; the stacked
        error matrix must not duplicate it per block."""
        weights = rng.integers(0, 256, size=(5, 3), dtype=np.uint8)
        kernel = LUTKernel(weights, _random_lut(rng))
        multi = MultiPlanKernel([kernel, kernel, kernel])
        assert multi._stacked_error is not None
        assert multi._stacked_error.shape[0] == kernel._error_matrix.shape[0]
        act = rng.integers(0, 256, size=(7, 5), dtype=np.uint8)
        expected = np.asarray(kernel(act), dtype=np.float64)
        out = multi.product_sums_multi(act, shared=True)
        for p in range(3):
            np.testing.assert_array_equal(out[p * 7 : (p + 1) * 7], expected)

    def test_validation(self, rng):
        weights = rng.integers(0, 256, size=(4, 2), dtype=np.uint8)
        with pytest.raises(ValueError, match="at least one"):
            MultiPlanKernel([])
        other = rng.integers(0, 256, size=(5, 2), dtype=np.uint8)
        with pytest.raises(ValueError, match="layer shape"):
            MultiPlanKernel([AccurateKernel(weights), AccurateKernel(other)])
        multi = MultiPlanKernel([AccurateKernel(weights), AccurateKernel(weights)])
        with pytest.raises(ValueError, match="equal plan blocks"):
            multi.product_sums_multi(
                rng.integers(0, 256, size=(5, 4), dtype=np.uint8)
            )
        with pytest.raises(ValueError, match="shape"):
            multi.product_sums_multi(
                rng.integers(0, 256, size=(4, 7), dtype=np.uint8), shared=True
            )


class TestOutputRealStacked:
    def _op_and_params(self, rng, taps: int, filters: int):
        weights = rng.integers(0, 256, size=(taps, filters), dtype=np.uint8)
        op = QuantizedLinearOp(
            weights,
            QuantParams(scale=0.013, zero_point=int(rng.integers(0, 256))),
            bias=rng.normal(size=filters),
        )
        act_params = QuantParams(scale=0.07, zero_point=int(rng.integers(0, 256)))
        return op, act_params

    def test_bit_exact_with_tiled_output_real(self, rng):
        for _ in range(5):
            taps = int(rng.integers(2, 16))
            filters = int(rng.integers(1, 6))
            n = int(rng.integers(1, 10))
            plans = int(rng.integers(1, 5))
            op, act_params = self._op_and_params(rng, taps, filters)
            act = rng.integers(0, 256, size=(n, taps), dtype=np.uint8)
            sums = rng.integers(0, 1 << 20, size=(plans * n, filters)).astype(
                np.float64
            )
            expected = np.concatenate(
                [
                    op.output_real(act, act_params, sums[p * n : (p + 1) * n])
                    for p in range(plans)
                ]
            )
            result = op.output_real_stacked(act, act_params, sums, plans)
            np.testing.assert_array_equal(result, expected)

    def test_does_not_mutate_product_sums(self, rng):
        op, act_params = self._op_and_params(rng, 5, 3)
        act = rng.integers(0, 256, size=(4, 5), dtype=np.uint8)
        sums = rng.integers(0, 1000, size=(8, 3)).astype(np.float64)
        before = sums.copy()
        op.output_real_stacked(act, act_params, sums, 2)
        np.testing.assert_array_equal(sums, before)

    def test_shape_validation(self, rng):
        op, act_params = self._op_and_params(rng, 5, 3)
        act = rng.integers(0, 256, size=(4, 5), dtype=np.uint8)
        with pytest.raises(ValueError, match="product_sums"):
            op.output_real_stacked(
                act, act_params, np.zeros((7, 3), dtype=np.float64), 2
            )


class TestCompileMultiContract:
    def test_capability_flags(self):
        assert get_backend("numpy").fused_multi_plan
        assert get_backend("numba").fused_multi_plan
        assert not get_backend("lowmem").fused_multi_plan

    def test_base_compile_multi_refuses_without_capability(self, rng):
        class NoFusion(EngineBackend):
            name = "stub-no-fusion"

            def availability(self):
                return True, ""

            def compile(self, product_model, weight_codes, control_variate):
                raise AssertionError("not exercised")

        weights = rng.integers(0, 256, size=(4, 2), dtype=np.uint8)
        with pytest.raises(BackendUnavailableError, match="fused_multi_plan"):
            NoFusion().compile_multi([AccurateProduct()], weights, None)

    def test_numpy_compile_multi_reuses_precompiled_kernels(self, rng):
        weights = rng.integers(0, 256, size=(4, 2), dtype=np.uint8)
        backend = NumpyBackend()
        kernels = [backend.compile(AccurateProduct(), weights, None)]
        multi = backend.compile_multi([AccurateProduct()], weights, None, kernels)
        assert multi.kernels[0] is kernels[0]


class TestCompileMultiStubJit:
    """The numba multi-plan kernel bodies, run as plain python loops.

    Same approach as ``TestNumbaBackendWithStubJit`` in
    ``test_engine_backends.py``: an identity ``njit`` executes exactly the
    code the JIT would compile, pinning the fused algorithm bit-exact on a
    numba-less machine.
    """

    @pytest.fixture
    def stub_backend(self, monkeypatch):
        import repro.core.backends as backends_mod

        class _StubNumba:
            @staticmethod
            def njit(*args, **kwargs):
                return lambda fn: fn

        monkeypatch.setattr(backends_mod, "_numba", _StubNumba())
        backend = backends_mod.NumbaBackend()
        assert backend.availability() == (True, "")
        return backend

    @pytest.fixture
    def model_stack(self, rng):
        from repro.baselines.weight_oriented import WeightOrientedProduct
        from repro.multipliers.lut import LUTMultiplier

        return [
            AccurateProduct(),
            PerforatedProduct(2, use_control_variate=True),
            PerforatedProduct(2, use_control_variate=False),
            PerforatedProduct(3, use_control_variate=True),
            LUTProduct(LUTMultiplier(_random_lut(rng), name="stub")),
            WeightOrientedProduct(1, 3, threshold=128),
        ]

    @pytest.mark.parametrize("shared", [True, False])
    def test_fused_bit_exact_vs_numpy_multi(
        self, stub_backend, model_stack, rng, shared
    ):
        weights = rng.integers(0, 256, size=(6, 4), dtype=np.uint8)
        cv = ControlVariate.from_weight_matrix(weights)
        multi = stub_backend.compile_multi(model_stack, weights, cv)
        assert multi.plans == len(model_stack)
        reference = NumpyBackend().compile_multi(model_stack, weights, cv)
        n = 5
        rows = n if shared else len(model_stack) * n
        act = rng.integers(0, 256, size=(rows, 6), dtype=np.uint8)
        np.testing.assert_array_equal(
            multi.product_sums_multi(act, shared=shared),
            reference.product_sums_multi(act, shared=shared),
        )

    def test_validation_errors_propagate(self, stub_backend, rng):
        weights = rng.integers(0, 256, size=(6, 4), dtype=np.uint8)
        bad_cv = ControlVariate(np.zeros(weights.shape[1] + 1))
        with pytest.raises(ValueError, match="filters"):
            stub_backend.compile_multi(
                [PerforatedProduct(1, True)], weights, bad_cv
            )
        multi = stub_backend.compile_multi([AccurateProduct()], weights, None)
        with pytest.raises(ValueError, match="shape"):
            multi.product_sums_multi(
                rng.integers(0, 256, size=(3, 9), dtype=np.uint8)
            )
        with pytest.raises(ValueError, match="equal plan blocks"):
            stub_backend.compile_multi(
                [AccurateProduct(), AccurateProduct()], weights, None
            ).product_sums_multi(rng.integers(0, 256, size=(3, 6), dtype=np.uint8))

    def test_broken_jit_falls_back_to_numpy_fusion(self, monkeypatch, rng):
        import repro.core.backends as backends_mod

        class _BrokenNumba:
            @staticmethod
            def njit(*args, **kwargs):
                raise RuntimeError("llvmlite ABI mismatch")

        monkeypatch.setattr(backends_mod, "_numba", _BrokenNumba())
        backend = backends_mod.NumbaBackend()
        weights = rng.integers(0, 256, size=(5, 3), dtype=np.uint8)
        with pytest.warns(RuntimeWarning, match="falling back"):
            multi = backend.compile_multi([AccurateProduct()], weights, None)
        assert isinstance(multi, MultiPlanKernel)
        act = rng.integers(0, 256, size=(4, 5), dtype=np.uint8)
        np.testing.assert_array_equal(
            multi.product_sums_multi(act, shared=True),
            AccurateKernel(weights)(act).astype(np.float64),
        )


@pytest.fixture(scope="module")
def trained(trained_tiny_model, tiny_dataset):
    return TrainedModel(
        name="vgg13",
        dataset_name=tiny_dataset.name,
        model=trained_tiny_model,
        float_accuracy=0.0,
    )


def _random_plans(trained, count: int, seed: int) -> list[ExecutionPlan]:
    """Randomized per-layer plan set (the shapes a sensitivity screen or a
    DSE batch produces), always including the accurate baseline."""
    rng = np.random.default_rng(seed)
    mac_names = [node.name for node in trained.model.conv_dense_nodes()]
    menu = [
        None,
        PerforatedProduct(1),
        PerforatedProduct(2),
        PerforatedProduct(2, use_control_variate=False),
        PerforatedProduct(3),
    ]
    plans = [ExecutionPlan.uniform(AccurateProduct())]
    while len(plans) < count:
        plan = ExecutionPlan.uniform(AccurateProduct())
        for name in mac_names:
            choice = menu[int(rng.integers(0, len(menu)))]
            if choice is not None:
                plan = plan.with_layer(name, choice)
        plans.append(plan)
    return plans


class TestExecutorForwardMany:
    @pytest.fixture(scope="class")
    def executor(self, trained, tiny_dataset):
        return ApproximateExecutor(
            trained.model, tiny_dataset.train_images[:32]
        )

    def test_randomized_parity_with_per_plan_forward(
        self, executor, trained, tiny_dataset
    ):
        assert executor.fused_multi_plan
        images = tiny_dataset.test_images[:12]
        for seed in (3, 17):
            plans = _random_plans(trained, count=5, seed=seed)
            # Duplicate plan objects and a distinct-but-identical plan must
            # share one evaluation line without disturbing output order.
            plans.append(plans[1])
            plans.append(ExecutionPlan(plans[2].default, dict(plans[2].per_layer)))
            fused = executor.forward_many(images, plans)
            assert len(fused) == len(plans)
            for plan, logits in zip(plans, fused):
                np.testing.assert_array_equal(logits, executor.forward(images, plan))

    def test_zero_shared_prefix_plans(self, executor, trained, tiny_dataset):
        """Plans diverging at the very first MAC layer still fuse bit-exactly."""
        images = tiny_dataset.test_images[:8]
        first = model_mac_names(trained)[0]
        base = ExecutionPlan.uniform(AccurateProduct())
        plans = [
            base,
            base.with_layer(first, PerforatedProduct(2)),
            base.with_layer(first, PerforatedProduct(3)),
        ]
        fused = executor.forward_many(images, plans)
        for plan, logits in zip(plans, fused):
            np.testing.assert_array_equal(logits, executor.forward(images, plan))

    def test_single_and_empty_plan_sets(self, executor, tiny_dataset):
        images = tiny_dataset.test_images[:4]
        plan = ExecutionPlan.uniform(PerforatedProduct(2))
        (only,) = executor.forward_many(images, [plan])
        np.testing.assert_array_equal(only, executor.forward(images, plan))
        assert executor.forward_many(images, []) == []

    def test_fused_counters_advance(self, trained, tiny_dataset):
        executor = ApproximateExecutor(
            trained.model, tiny_dataset.train_images[:32]
        )
        assert executor.fused_stats() == {
            "fused_launches": 0,
            "fused_plans_total": 0,
        }
        plans = _random_plans(trained, count=4, seed=5)
        executor.forward_many(tiny_dataset.test_images[:6], plans)
        stats = executor.fused_stats()
        assert stats["fused_launches"] > 0
        assert stats["fused_plans_total"] >= stats["fused_launches"] * 2

    def test_lowmem_backend_degrades_to_per_plan_loop(self, trained, tiny_dataset):
        executor = ApproximateExecutor(
            trained.model,
            tiny_dataset.train_images[:32],
            engine_backend="lowmem",
        )
        assert not executor.fused_multi_plan
        images = tiny_dataset.test_images[:6]
        plans = _random_plans(trained, count=3, seed=9)
        fused = executor.forward_many(images, plans)
        for plan, logits in zip(plans, fused):
            np.testing.assert_array_equal(logits, executor.forward(images, plan))
        assert executor.fused_stats()["fused_launches"] == 0


class TestPlanGroupSlices:
    def _schedule(self, count: int, model: int = 0):
        plan = ExecutionPlan.uniform(AccurateProduct())
        return [(model, plan)] * count

    def test_cover_and_cap_without_depths(self):
        schedule = self._schedule(10)
        slices = plan_group_slices(schedule, 4)
        assert slices == [(0, 4), (4, 8), (8, 10)]

    def test_model_change_always_cuts(self):
        schedule = self._schedule(3) + self._schedule(2, model=1)
        assert plan_group_slices(schedule, 8) == [(0, 3), (3, 5)]

    def test_depth_drop_cuts_groups_at_family_boundaries(self):
        # Two families of three plans each: constant agreement depth inside
        # a family (5), a drop (2) at the family boundary.  The blind cap
        # (4) would cut mid-family; the depths align the cut with the drop.
        schedule = self._schedule(6)
        depths = [5, 5, 2, 5, 5]
        assert plan_group_slices(schedule, 4, split_depths=depths) == [
            (0, 3),
            (3, 6),
        ]

    def test_group_cap_still_enforced_with_depths(self):
        schedule = self._schedule(6)
        depths = [5, 5, 5, 5, 5]
        assert plan_group_slices(schedule, 2, split_depths=depths) == [
            (0, 2),
            (2, 4),
            (4, 6),
        ]

    def test_rising_depths_do_not_cut(self):
        # Depth may only rise inside a group (deeper agreement is never a
        # reason to split); only drops below the running minimum cut.
        schedule = self._schedule(4)
        depths = [2, 3, 4]
        assert plan_group_slices(schedule, 8, split_depths=depths) == [(0, 4)]

    def test_depths_validation(self):
        schedule = self._schedule(4)
        with pytest.raises(ValueError, match="boundary"):
            plan_group_slices(schedule, 4, split_depths=[1, 2])
        with pytest.raises(ValueError, match="positive"):
            plan_group_slices(schedule, 0)

    def test_depth_aware_groups_align_with_sensitivity_families(self, trained):
        """A per-layer sensitivity screen on the real model: groups must
        land on the divergence-family boundaries of the sorted schedule."""
        mac_names = model_mac_names(trained)
        plans = [ExecutionPlan.uniform(AccurateProduct())]
        for name in mac_names[2:5]:
            for m in (1, 2, 3):
                for cv in (True, False):
                    plans.append(
                        ExecutionPlan.uniform(AccurateProduct()).with_layer(
                            name, PerforatedProduct(m, use_control_variate=cv)
                        )
                    )
        from repro.runtime.scheduling import schedule_cells

        cells = [(0, plan) for plan in plans]
        names_by_model = {0: mac_names}
        order = schedule_cells(cells, names_by_model)
        schedule = [cells[i] for i in order]
        depths = shared_prefix_depths(schedule, names_by_model)
        slices = plan_group_slices(schedule, 8, split_depths=depths)
        # Slices must cover the schedule contiguously...
        assert slices[0][0] == 0 and slices[-1][1] == len(schedule)
        assert all(a[1] == b[0] for a, b in zip(slices, slices[1:]))
        # ... and every cut must sit at a boundary whose agreement depth is
        # no deeper than the depths inside the adjacent groups (i.e. cuts
        # happen at divergence-family boundaries, not inside a family).
        for _, stop in slices[:-1]:
            boundary = depths[stop - 1]
            assert boundary <= min(depths[max(0, stop - 2) : stop + 1])


@pytest.mark.runtime
class TestServiceFusedParity:
    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_plan_sweep_fused_equals_unfused(
        self, trained, tiny_dataset, max_workers
    ):
        plans = _random_plans(trained, count=6, seed=23)
        labeled = [(f"p{i}", plan) for i, plan in enumerate(plans)]
        datasets = {tiny_dataset.name: tiny_dataset}
        kwargs = dict(
            max_eval_images=16,
            calibration_images=32,
            max_workers=max_workers,
        )
        fused = plan_sweep([trained], datasets, labeled, fuse_plans=True, **kwargs)
        unfused = plan_sweep(
            [trained], datasets, labeled, fuse_plans=False, **kwargs
        )
        assert [r.accuracy for r in fused] == [r.accuracy for r in unfused]
        assert [r.plan_label for r in fused] == [r.plan_label for r in unfused]

    def test_service_stats_report_fused_launches(self, trained, tiny_dataset):
        from repro.runtime import EvaluationService

        plans = _random_plans(trained, count=5, seed=31)
        with EvaluationService(
            [trained],
            {tiny_dataset.name: tiny_dataset},
            max_workers=1,
            max_eval_images=16,
            calibration_images=32,
        ) as service:
            service.evaluate_plans(0, plans)
            stats = service.stats()
        engine = stats["engine"]
        assert engine["fuse_plans"] is True
        assert engine["fused_launches"] > 0
        assert engine["plans_per_launch_avg"] > 1.0


@pytest.mark.runtime
class TestGoldenAccuracyParity:
    def test_fused_sweep_reproduces_committed_golden_table(self):
        """The fused path must reproduce the committed golden accuracy
        table byte-exactly — the same invariant ``repro verify-results``
        gates, pinned here directly against the fused/unfused toggle."""
        import os

        from repro.provenance.manifest import load_json
        from repro.provenance.workload import (
            CALIBRATION_IMAGES,
            PERFORATIONS,
            _train_workload_model,
        )
        from repro.simulation.campaign import parallel_sweep

        golden_path = os.path.join("results", "golden", "accuracy_table.json")
        if not os.path.exists(golden_path):
            pytest.skip("no committed golden accuracy table")
        golden = load_json(golden_path)
        trained, dataset = _train_workload_model()
        rows_by_mode = {}
        for fuse in (True, False):
            sweep = parallel_sweep(
                [trained],
                {dataset.name: dataset},
                perforations=PERFORATIONS,
                calibration_images=CALIBRATION_IMAGES,
                max_workers=1,
                fuse_plans=fuse,
            )
            rows_by_mode[fuse] = [
                {
                    "m": record.m,
                    "with_control_variate": record.with_control_variate,
                    "accuracy": record.approximate_accuracy,
                    "accuracy_loss": record.accuracy_loss,
                }
                for record in sweep.records
            ]
            assert (
                sweep.baselines[(trained.name, dataset.name)]
                == golden["baseline_accuracy"]
            )
        assert rows_by_mode[True] == rows_by_mode[False] == golden["rows"]
