"""Unit tests of the cost-model-driven scheduler (:mod:`repro.runtime`).

Fast, model-free tests of the scheduling layer introduced with the
work-stealing runtime — the properties the service's bit-exactness and
load balance rest on:

* :func:`~repro.runtime.scheduling.contiguous_chunks` is count-balanced:
  exactly ``min(n, max_chunks)`` chunks whose sizes differ by at most one
  (the historical ceil-div split idled workers: 9 cells on 8 workers made
  5 chunks);
* :func:`~repro.runtime.scheduling.cost_balanced_chunks` partitions by
  predicted cost, isolates stragglers, never reorders or drops a cell,
  and biases cuts toward prefix-divergence boundaries;
* :class:`~repro.runtime.cost_model.CellCostModel` prices LUT-mapped
  layers far above perforated ones and refines its factors online from
  measured chunk wall-clocks;
* :mod:`~repro.runtime.sizing` resolves requested worker counts against
  the schedulable CPUs (degrade-to-serial clamp).

These run in milliseconds (no trained models, no pools) and are wired
into ``make runtime-smoke`` via the ``scheduler-unit`` target.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime.cost_model import (
    DEFAULT_TECHNIQUE_COST,
    CellCostModel,
    fingerprint_kind,
)
from repro.runtime.scheduling import (
    contiguous_chunks,
    cost_balanced_chunks,
    shared_prefix_depths,
)
from repro.runtime.sizing import (
    auto_worker_count,
    effective_cpu_count,
    resolve_worker_count,
)
from repro.simulation.inference import (
    AccurateProduct,
    ExecutionPlan,
    PerforatedProduct,
    ProductModel,
)

pytestmark = pytest.mark.runtime


class FakeLUT(ProductModel):
    """Stand-in with a LUT-shaped fingerprint (never evaluated here)."""

    def __init__(self, digest: str = "t"):
        self._digest = digest

    def product_sums(self, act_codes, weight_codes, control_variate):
        raise NotImplementedError("scheduling tests never evaluate")

    def fingerprint(self) -> tuple:
        return ("lut", self._digest)


NAMES = ("conv1", "conv2", "conv3")


def _plan(*products) -> ExecutionPlan:
    """Plan assigning ``products[i]`` to ``NAMES[i]`` (None = accurate)."""
    plan = ExecutionPlan.uniform(AccurateProduct())
    for name, product in zip(NAMES, products):
        if product is not None:
            plan = plan.with_layer(name, product)
    return plan


class TestContiguousChunks:
    def test_nine_cells_eight_workers_employ_every_worker(self):
        # The historical ceil-div split produced 5 chunks of 2 here,
        # leaving 3 of 8 workers idle for the whole batch.
        chunks = contiguous_chunks(list(range(9)), 8)
        assert len(chunks) == 8
        sizes = sorted(len(chunk) for chunk in chunks)
        assert sizes == [1, 1, 1, 1, 1, 1, 1, 2]

    @pytest.mark.parametrize("n", [1, 2, 5, 9, 16, 17, 31])
    @pytest.mark.parametrize("k", [1, 2, 3, 8, 40])
    def test_balanced_cover_in_order(self, n, k):
        schedule = list(range(n))
        chunks = contiguous_chunks(schedule, k)
        assert len(chunks) == min(n, k)
        assert all(chunk for chunk in chunks)
        assert [x for chunk in chunks for x in chunk] == schedule
        sizes = {len(chunk) for chunk in chunks}
        assert max(sizes) - min(sizes) <= 1

    def test_empty_and_invalid(self):
        assert contiguous_chunks([], 4) == []
        with pytest.raises(ValueError, match="positive integer"):
            contiguous_chunks([1], 0)


class TestSharedPrefixDepths:
    def test_identical_plans_share_full_depth(self):
        plan = _plan(PerforatedProduct(2), PerforatedProduct(2), None)
        schedule = [(0, plan), (0, plan)]
        assert shared_prefix_depths(schedule, {0: NAMES}) == [len(NAMES)]

    def test_divergence_depth_counts_leading_agreement(self):
        base = _plan(PerforatedProduct(2), PerforatedProduct(2), None)
        tail_diff = _plan(PerforatedProduct(2), PerforatedProduct(2), FakeLUT())
        head_diff = _plan(PerforatedProduct(3), PerforatedProduct(2), None)
        schedule = [(0, base), (0, tail_diff), (0, head_diff)]
        assert shared_prefix_depths(schedule, {0: NAMES}) == [2, 0]

    def test_model_boundary_is_zero_depth(self):
        plan = _plan(PerforatedProduct(2), None, None)
        schedule = [(0, plan), (1, plan)]
        assert shared_prefix_depths(schedule, {0: NAMES, 1: NAMES}) == [0]


class TestCostBalancedChunks:
    @pytest.mark.parametrize("k", [1, 2, 3, 6, 10])
    def test_exact_cover_in_order(self, k):
        schedule = list("abcdef")
        costs = [1.0, 5.0, 1.0, 1.0, 9.0, 1.0]
        chunks = cost_balanced_chunks(schedule, costs, k)
        assert len(chunks) == min(len(schedule), k)
        assert all(chunk for chunk in chunks)
        assert [x for chunk in chunks for x in chunk] == schedule

    def test_uniform_costs_match_count_balance(self):
        schedule = list(range(10))
        chunks = cost_balanced_chunks(schedule, [1.0] * 10, 4)
        sizes = {len(chunk) for chunk in chunks}
        assert max(sizes) - min(sizes) <= 1

    def test_straggler_isolated_in_small_chunk(self):
        # One LUT-heavy cell worth 40 cheap ones: it must get its own
        # chunk, so the remaining workers share the cheap cells instead
        # of one worker dragging the straggler plus extra load.
        costs = [1.0, 1.0, 1.0, 1.0, 1.0, 40.0]
        chunks = cost_balanced_chunks(list("abcdef"), costs, 4)
        assert ["f"] in chunks

    def test_zero_costs_degenerate_to_count_balance(self):
        schedule = list(range(9))
        assert cost_balanced_chunks(schedule, [0.0] * 9, 8) == contiguous_chunks(
            schedule, 8
        )

    def test_split_depth_bias_moves_cut_to_divergence_boundary(self):
        # Balanced-cost cuts at position 1 and 2 tie (|1-2| = 1 each after
        # the depth penalty); the depth bias makes the zero-depth boundary
        # at position 1 win over the deep-prefix boundary at position 2.
        chunks = cost_balanced_chunks(
            list("abcd"), [1.0] * 4, 2, split_depths=[0, 3, 3]
        )
        assert chunks == [["a"], ["b", "c", "d"]]

    def test_validation(self):
        with pytest.raises(ValueError, match="one cost per cell"):
            cost_balanced_chunks([1, 2], [1.0], 2)
        with pytest.raises(ValueError, match="positive integer"):
            cost_balanced_chunks([1], [1.0], 0)
        assert cost_balanced_chunks([], [], 3) == []


class TestCellCostModel:
    def _model(self, **kwargs) -> CellCostModel:
        return CellCostModel({0: {name: 100.0 for name in NAMES}}, **kwargs)

    def test_lut_priced_far_above_perforated(self):
        model = self._model()
        lut = model.cell_cost(0, _plan(FakeLUT(), FakeLUT(), FakeLUT()), NAMES)
        perf = model.cell_cost(
            0, _plan(PerforatedProduct(2), PerforatedProduct(2), PerforatedProduct(2)), NAMES
        )
        accurate = model.cell_cost(0, _plan(None, None, None), NAMES)
        assert lut / perf == pytest.approx(
            DEFAULT_TECHNIQUE_COST["lut"] / DEFAULT_TECHNIQUE_COST["perforated"]
        )
        assert lut / accurate == pytest.approx(DEFAULT_TECHNIQUE_COST["lut"])
        assert lut > 30 * perf  # the bench-calibrated ~40x gap

    def test_fingerprint_kind_tokens(self):
        assert fingerprint_kind(("accurate",)) == "accurate"
        assert fingerprint_kind(("perforated", 2, True)) == "perforated"
        assert fingerprint_kind(("lut", "abc")) == "lut"
        assert fingerprint_kind((object(),)) == "unknown"

    def test_chunk_units_by_kind_sums_raw_work(self):
        model = self._model()
        chunk = [
            (0, _plan(None, PerforatedProduct(2), FakeLUT())),
            (0, _plan(None, None, None)),
        ]
        units = model.chunk_units_by_kind(chunk, {0: NAMES})
        assert units == {"accurate": 400.0, "perforated": 100.0, "lut": 100.0}

    def test_observe_calibrates_seconds_and_reprices_dominant_kind(self):
        model = self._model(smoothing=1.0)  # trust the latest chunk fully
        assert model.predict_seconds(100.0) is None
        # Anchor the seconds-per-unit scale with an accurate-only chunk:
        # 100 units in 1 s -> 0.01 s/unit... but predicted cost is weighted,
        # accurate factor 1.0, so scale = 1.0 / 100.
        model.observe({"accurate": 100.0}, 1.0)
        assert model.seconds_per_unit == pytest.approx(0.01)
        assert model.predict_seconds(100.0) == pytest.approx(1.0)
        # A LUT-dominated chunk that runs 2x its prediction re-prices the
        # LUT factor upward (the host's LUT path is slower than assumed).
        before = model.technique_factor("lut")
        units = {"lut": 100.0}
        predicted_s = model.predict_seconds(model.predicted_cost(units))
        model.observe(units, 2.0 * predicted_s)
        assert model.technique_factor("lut") == pytest.approx(2.0 * before)

    def test_observe_ignores_degenerate_measurements(self):
        model = self._model()
        model.observe({"accurate": 100.0}, 0.0)  # no wall-clock
        model.observe({}, 1.0)  # no work
        assert model.observations == 0
        assert model.seconds_per_unit is None

    def test_unknown_model_and_layers_degrade_to_unit_work(self):
        model = CellCostModel({})
        cost = model.cell_cost(7, _plan(None, None, None), NAMES)
        assert cost == pytest.approx(len(NAMES))  # 1.0 work x 1.0 factor

    def test_smoothing_validation(self):
        with pytest.raises(ValueError, match="smoothing"):
            self._model(smoothing=1.5)


class TestSizing:
    def test_effective_cpu_count_matches_affinity(self):
        assert effective_cpu_count() == max(1, len(os.sched_getaffinity(0)))

    def test_auto_worker_count_within_bounds(self):
        assert 1 <= auto_worker_count() <= effective_cpu_count()

    def test_explicit_request_clamped_to_schedulable_cpus(self):
        cpus = effective_cpu_count()
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count(cpus) == cpus
        assert resolve_worker_count(cpus + 7) == cpus  # degrade, don't contend

    def test_none_means_auto(self):
        assert resolve_worker_count(None) == auto_worker_count()

    def test_num_cells_caps_workers(self):
        assert resolve_worker_count(effective_cpu_count(), num_cells=1) == 1

    def test_invalid_request_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            resolve_worker_count(0)
