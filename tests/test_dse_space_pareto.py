"""Unit tests of the DSE search space and Pareto-front containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse.pareto import ParetoFront, ParetoPoint
from repro.dse.space import SearchSpace
from repro.models.zoo import build_model
from repro.multipliers.library import MultiplierLibrary
from repro.simulation.inference import (
    AccurateProduct,
    LUTProduct,
    PerforatedProduct,
)

pytestmark = pytest.mark.dse


def _point(energy: float, acc: float, label: str = "") -> ParetoPoint:
    return ParetoPoint(
        label=label or f"E{energy}A{acc}",
        energy_nj=energy,
        accuracy=acc,
        accuracy_loss=100.0 * (0.9 - acc),
    )


class TestParetoFront:
    def test_dominated_point_rejected(self):
        front = ParetoFront()
        assert front.add(_point(10.0, 0.9))
        assert not front.add(_point(11.0, 0.9))  # worse energy, same accuracy
        assert not front.add(_point(10.0, 0.8))  # same energy, worse accuracy
        assert len(front) == 1

    def test_dominating_point_evicts(self):
        front = ParetoFront()
        front.add(_point(10.0, 0.8))
        front.add(_point(12.0, 0.85))
        assert front.add(_point(9.0, 0.9))  # dominates both
        assert len(front) == 1
        assert front.points()[0].energy_nj == 9.0

    def test_incomparable_points_coexist(self):
        front = ParetoFront()
        front.add(_point(10.0, 0.8))
        front.add(_point(12.0, 0.9))
        front.add(_point(8.0, 0.7))
        assert len(front) == 3
        energies = [p.energy_nj for p in front.points()]
        assert energies == sorted(energies)

    def test_duplicate_objectives_kept_once(self):
        front = ParetoFront()
        assert front.add(_point(10.0, 0.8, "first"))
        assert not front.add(_point(10.0, 0.8, "second"))
        assert len(front) == 1

    def test_min_energy_point_honors_loss_budget(self):
        front = ParetoFront()
        cheap_lossy = _point(5.0, 0.5)  # loss 40 pp
        mid = _point(8.0, 0.88)  # loss 2 pp
        expensive_exact = _point(12.0, 0.9)  # loss 0 pp
        for p in (cheap_lossy, mid, expensive_exact):
            front.add(p)
        assert front.min_energy_point(None) == cheap_lossy
        assert front.min_energy_point(5.0) == mid
        assert front.min_energy_point(1.0) == expensive_exact
        assert front.min_energy_point(-1.0) is None


@pytest.fixture(scope="module")
def small_model():
    return build_model("vgg13", num_classes=4, base_width=8, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def small_space(small_model):
    return SearchSpace.build(small_model, (16, 16, 3), array_size=32)


class TestSearchSpace:
    def test_accurate_candidate_first_and_most_expensive(self, small_space):
        assert isinstance(small_space.candidates[0].model, AccurateProduct)
        powers = [c.power_mw for c in small_space.candidates]
        assert powers[0] == max(powers)

    def test_layers_cover_every_mac_node(self, small_space, small_model):
        mac_names = [n.name for n in small_model.conv_dense_nodes()]
        assert list(small_space.layer_names) == mac_names

    def test_accurate_assignment_maps_to_uniform_accurate_plan(self, small_space):
        plan = small_space.plan(small_space.accurate_assignment())
        for name in small_space.layer_names:
            assert plan.model_for(name).fingerprint() == ("accurate",)

    def test_plan_maps_candidate_models_per_layer(self, small_space):
        assignment = list(small_space.accurate_assignment())
        assignment[2] = 1
        plan = small_space.plan(assignment)
        expected = small_space.candidates[1].model
        assert plan.model_for(small_space.layer_names[2]) is expected

    def test_energy_decreases_with_cheaper_candidates(self, small_space):
        accurate = small_space.accurate_assignment()
        accurate_energy = small_space.energy_nj(accurate)
        assert accurate_energy == small_space.accurate_energy_nj()
        for k in range(1, small_space.num_candidates):
            uniform = (k,) * small_space.num_layers
            assert small_space.energy_nj(uniform) < accurate_energy

    def test_single_layer_step_strictly_cheaper(self, small_space):
        base = small_space.accurate_assignment()
        for layer_index in range(small_space.num_layers):
            stepped = list(base)
            stepped[layer_index] = 1
            assert small_space.energy_nj(stepped) < small_space.energy_nj(base)

    def test_size_and_enumeration_agree(self, small_model):
        space = SearchSpace.build(
            small_model,
            (16, 16, 3),
            perforations=(2,),
            include_no_cv=False,
            layers=["s0_c0_conv", "s0_c1_conv"],
        )
        assert space.num_candidates == 2  # accurate + p2v
        assert space.size() == 4
        enumerated = list(space.enumerate_assignments())
        assert len(enumerated) == space.size()
        assert len(set(enumerated)) == space.size()

    def test_restricted_layers_leave_rest_accurate(self, small_model):
        space = SearchSpace.build(
            small_model, (16, 16, 3), layers=["s0_c0_conv"], perforations=(1,)
        )
        assignment = (space.num_candidates - 1,)
        plan = space.plan(assignment)
        mac_names = [n.name for n in small_model.conv_dense_nodes()]
        for name in mac_names[1:]:
            assert plan.model_for(name).fingerprint() == ("accurate",)

    def test_library_candidates_included(self, small_model):
        library = MultiplierLibrary.synthetic_evoapprox()
        space = SearchSpace.build(
            small_model,
            (16, 16, 3),
            library=library,
            max_library_candidates=2,
            layers=["s0_c0_conv"],
        )
        lut_candidates = [
            c for c in space.candidates if isinstance(c.model, LUTProduct)
        ]
        assert len(lut_candidates) == 2
        accurate_power = space.candidates[0].power_mw
        for candidate in lut_candidates:
            assert candidate.power_mw < accurate_power

    def test_label_and_describe(self, small_space):
        assignment = list(small_space.accurate_assignment())
        assignment[0] = 1
        label = small_space.label(assignment)
        assert label.startswith(small_space.candidates[1].code)
        described = small_space.describe(assignment)
        assert described[small_space.layer_names[0]] == small_space.candidates[1].name
        assert described[small_space.layer_names[1]] == "accurate"

    def test_validation_errors(self, small_space):
        with pytest.raises(ValueError):
            small_space.validate((0,))
        with pytest.raises(ValueError):
            small_space.validate((99,) * small_space.num_layers)

    def test_uniform_energy_matches_accurate_assignment(self, small_space):
        accurate_power = small_space.candidates[0].power_mw
        assert small_space.uniform_energy_nj(accurate_power) == pytest.approx(
            small_space.accurate_energy_nj()
        )
        assert small_space.uniform_energy_nj(
            accurate_power, extra_cycles_per_layer=1
        ) > small_space.accurate_energy_nj()

    def test_perforated_candidates_carry_cv_variants(self, small_space):
        names = {c.name for c in small_space.candidates}
        assert "perforated_m2+V" in names
        assert "perforated_m2" in names
        cv = next(c for c in small_space.candidates if c.name == "perforated_m2+V")
        plain = next(c for c in small_space.candidates if c.name == "perforated_m2")
        assert isinstance(cv.model, PerforatedProduct) and cv.model.use_control_variate
        # The MAC+ column costs power, so the +V variant is more expensive.
        assert cv.power_mw > plain.power_mw
