"""Engine-backend registry semantics and exactness-boundary property tests.

Complements the parity suite in ``test_engine_kernels.py``: this file pins
the *registry* contract (selection, availability, clean fallback, config /
CLI threading) and the numeric exactness boundaries of the float-BLAS
machinery (``exact_int_matmul`` and ``_WeightOperand``'s f32/f64 promotion)
with randomized property tests.
"""

import numpy as np
import pytest

from repro.core.accelerator_model import AcceleratorConfig
from repro.core.approx_conv import accurate_product_sums, lut_product_sums
from repro.core.backends import (
    DEFAULT_BACKEND,
    BackendUnavailableError,
    EngineBackend,
    LowMemoryBackend,
    NumpyBackend,
    available_backend_names,
    backend_names,
    get_backend,
    has_backend,
    register_backend,
    resolve_backend,
)
from repro.core.control_variate import ControlVariate
from repro.core.product_kernels import (
    ChunkedKernel,
    KernelOptions,
    LUTKernel,
    PerforatedKernel,
    _F32_EXACT_BOUND,
    _WeightOperand,
    exact_int_matmul,
)
from repro.simulation.inference import (
    ApproximateExecutor,
    LUTProduct,
    PerforatedProduct,
)

pytestmark = pytest.mark.engine


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = backend_names()
        for expected in ("numpy", "numba", "lowmem"):
            assert expected in names
        assert DEFAULT_BACKEND == "numpy"
        assert has_backend("numpy") and not has_backend("gpu")

    def test_numpy_backend_always_available(self):
        assert "numpy" in available_backend_names()
        assert get_backend("numpy").availability() == (True, "")

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(KeyError, match="numpy"):
            get_backend("does-not-exist")

    def test_register_rejects_duplicates_and_anonymous(self):
        with pytest.raises(ValueError):
            register_backend(NumpyBackend())

        class Anonymous(NumpyBackend):
            name = "abstract"

        with pytest.raises(ValueError):
            register_backend(Anonymous())

    def test_resolve_backend_identity_and_default(self):
        assert resolve_backend(None).name == DEFAULT_BACKEND
        backend = get_backend("lowmem")
        assert resolve_backend(backend) is backend
        assert resolve_backend("lowmem") is backend

    def test_unavailable_backend_falls_back_with_warning(self):
        """The 'falls back cleanly' contract, exercised through a stub so it
        holds regardless of whether numba is installed."""

        class Unavailable(EngineBackend):
            name = "stub-unavailable"

            def availability(self):
                return False, "stubbed out"

            def compile(self, product_model, weight_codes, control_variate):
                raise AssertionError("must never compile")

        stub = Unavailable()
        with pytest.warns(RuntimeWarning, match="stubbed out"):
            resolved = resolve_backend(stub)
        assert resolved.name == DEFAULT_BACKEND
        with pytest.raises(BackendUnavailableError, match="stubbed out"):
            resolve_backend(stub, allow_fallback=False)

    def test_numba_backend_honest_about_availability(self):
        backend = get_backend("numba")
        available, reason = backend.availability()
        try:
            import numba  # noqa: F401

            assert available
        except ImportError:
            assert not available and "numba" in reason
            with pytest.raises(BackendUnavailableError):
                backend._require_available()

    def test_accelerator_config_validates_backend(self):
        assert AcceleratorConfig().engine_backend == "numpy"
        assert AcceleratorConfig(engine_backend="lowmem").engine_backend == "lowmem"
        with pytest.raises(ValueError, match="engine backend"):
            AcceleratorConfig(engine_backend="not-a-backend")

    def test_executor_from_config_honors_backend(self, trained_tiny_model, tiny_dataset):
        config = AcceleratorConfig(perforation=2, engine_backend="lowmem")
        executor = ApproximateExecutor.from_config(
            trained_tiny_model, tiny_dataset.train_images[:32], config
        )
        assert executor.engine_backend.name == "lowmem"

    def test_executor_falls_back_for_unavailable_backend(
        self, trained_tiny_model, tiny_dataset
    ):
        if "numba" in available_backend_names():
            pytest.skip("numba installed: no unavailable builtin backend to test")
        calib = tiny_dataset.train_images[:32]
        with pytest.warns(RuntimeWarning, match="falling back"):
            executor = ApproximateExecutor(trained_tiny_model, calib, engine_backend="numba")
        assert executor.engine_backend.name == DEFAULT_BACKEND


class TestNumbaBackendWithStubJit:
    """Validate the numba kernel bodies without numba installed.

    The kernels are plain-python loop nests that only gain speed from
    ``numba.njit``; substituting an identity decorator runs the exact same
    code paths the JIT would compile, pinning the algorithm (and the
    backend's dispatch / fallback wiring) bit-exact on any machine.
    """

    @pytest.fixture
    def stub_backend(self, monkeypatch):
        import repro.core.backends as backends_mod

        class _StubNumba:
            @staticmethod
            def njit(*args, **kwargs):
                return lambda fn: fn

        monkeypatch.setattr(backends_mod, "_numba", _StubNumba())
        backend = backends_mod.NumbaBackend()
        assert backend.availability() == (True, "")
        return backend

    @pytest.fixture
    def small_operands(self, rng):
        # Small on purpose: the stubbed kernels run as pure-python loops.
        acts = rng.integers(0, 256, size=(9, 7), dtype=np.uint8)
        weights = rng.integers(0, 256, size=(7, 4), dtype=np.uint8)
        return acts, weights

    def test_accurate_bit_exact(self, stub_backend, small_operands):
        from repro.simulation.inference import AccurateProduct

        acts, weights = small_operands
        kernel = stub_backend.compile(AccurateProduct(), weights, None)
        np.testing.assert_array_equal(kernel(acts), accurate_product_sums(acts, weights))

    @pytest.mark.parametrize("m", [0, 2, 7])
    @pytest.mark.parametrize("use_cv", [True, False])
    def test_perforated_bit_exact(self, stub_backend, small_operands, m, use_cv):
        from repro.core.approx_conv import perforated_product_sums

        acts, weights = small_operands
        cv = ControlVariate.from_weight_matrix(weights)
        kernel = stub_backend.compile(PerforatedProduct(m, use_cv), weights, cv)
        expected = perforated_product_sums(acts, weights, m, cv if use_cv else None)
        result = kernel(acts)
        assert np.asarray(result).dtype == np.asarray(expected).dtype
        np.testing.assert_array_equal(result, expected)

    def test_lut_bit_exact(self, stub_backend, small_operands, rng):
        from repro.multipliers.lut import LUTMultiplier

        acts, weights = small_operands
        lut = np.arange(256, dtype=np.int64)[:, None] * np.arange(256, dtype=np.int64)
        lut = lut + rng.integers(-300, 300, size=(256, 256))
        kernel = stub_backend.compile(
            LUTProduct(LUTMultiplier(lut, name="stub")), weights, None
        )
        np.testing.assert_array_equal(kernel(acts), lut_product_sums(acts, weights, lut))

    def test_exotic_model_falls_back_to_own_kernel(self, stub_backend, small_operands):
        from repro.baselines.weight_oriented import WeightOrientedProduct

        acts, weights = small_operands
        cv = ControlVariate.from_weight_matrix(weights)
        model = WeightOrientedProduct(1, 3, threshold=128)
        kernel = stub_backend.compile(model, weights, cv)
        np.testing.assert_array_equal(
            kernel(acts), model.product_sums(acts, weights, cv)
        )

    def test_validation_errors_propagate_without_disabling_backend(
        self, stub_backend, small_operands
    ):
        """A bad compile input raises like any backend — it must not be
        misdiagnosed as a broken JIT and permanently disable numba."""
        acts, weights = small_operands
        bad_cv = ControlVariate(np.zeros(weights.shape[1] + 1))
        with pytest.raises(ValueError, match="filters"):
            stub_backend.compile(PerforatedProduct(1, True), weights, bad_cv)
        assert stub_backend.availability() == (True, "")
        cv = ControlVariate.from_weight_matrix(weights)
        kernel = stub_backend.compile(PerforatedProduct(1, True), weights, cv)
        from repro.core.approx_conv import perforated_product_sums

        np.testing.assert_array_equal(
            kernel(acts), perforated_product_sums(acts, weights, 1, cv)
        )

    def test_broken_jit_disables_backend_with_warning(self, monkeypatch, small_operands):
        """A numba install whose JIT blows up must not take the run down."""
        import repro.core.backends as backends_mod
        from repro.simulation.inference import AccurateProduct

        class _BrokenNumba:
            @staticmethod
            def njit(*args, **kwargs):
                raise RuntimeError("llvmlite ABI mismatch")

        monkeypatch.setattr(backends_mod, "_numba", _BrokenNumba())
        backend = backends_mod.NumbaBackend()
        acts, weights = small_operands
        with pytest.warns(RuntimeWarning, match="falling back"):
            kernel = backend.compile(AccurateProduct(), weights, None)
        np.testing.assert_array_equal(kernel(acts), accurate_product_sums(acts, weights))
        available, reason = backend.availability()
        assert not available and "ABI mismatch" in reason


class TestLowMemoryBackend:
    def test_caps_lut_error_matrix_and_chunks(self, rng):
        acts = rng.integers(0, 256, size=(50, 16), dtype=np.uint8)
        weights = rng.integers(0, 256, size=(16, 6), dtype=np.uint8)
        lut = np.arange(256)[:, None] * np.arange(256)[None, :] + 1
        backend = LowMemoryBackend(max_error_matrix_bytes=0, chunk_patches=7)
        from repro.multipliers.lut import LUTMultiplier

        kernel = backend.compile(LUTProduct(LUTMultiplier(lut, name="t")), weights, None)
        assert isinstance(kernel, ChunkedKernel) and kernel.chunk_patches == 7
        assert isinstance(kernel.base, LUTKernel)
        # The cap forced the streaming per-tap mode: no error matrix built.
        assert kernel.base._error_matrix is None and not kernel.base.is_exact
        np.testing.assert_array_equal(kernel(acts), lut_product_sums(acts, weights, lut))

    def test_validation(self):
        with pytest.raises(ValueError):
            LowMemoryBackend(max_error_matrix_bytes=-1)
        with pytest.raises(ValueError):
            LowMemoryBackend(chunk_patches=0)

    def test_chunked_kernel_preserves_float_dtype(self, rng):
        """Chunk concatenation must not disturb the unquantized-CV float path."""
        acts = rng.integers(0, 256, size=(23, 9), dtype=np.uint8)
        weights = rng.integers(0, 256, size=(9, 4), dtype=np.uint8)
        cv = ControlVariate.from_weight_matrix(weights, quantize=False)
        chunked = ChunkedKernel(PerforatedKernel(weights, 2, cv), chunk_patches=5)
        reference = PerforatedKernel(weights, 2, cv)(acts)
        result = chunked(acts)
        assert np.asarray(result).dtype == np.asarray(reference).dtype == np.float64
        np.testing.assert_array_equal(result, reference)

    def test_kernel_options_reach_lut_compile(self, rng):
        weights = rng.integers(0, 256, size=(8, 3), dtype=np.uint8)
        from repro.multipliers.lut import LUTMultiplier

        lut = np.arange(256)[:, None] * np.arange(256)[None, :] + 2
        model = LUTProduct(LUTMultiplier(lut, name="t"))
        capped = model.compile(weights, None, options=KernelOptions(max_error_matrix_bytes=0))
        uncapped = model.compile(weights, None)
        assert capped._error_matrix is None
        assert uncapped._error_matrix is not None


class TestExactnessBoundaries:
    """Randomized property tests of the float-BLAS exactness machinery."""

    def test_exact_int_matmul_randomized(self, rng):
        for _ in range(20):
            patches = int(rng.integers(1, 40))
            taps = int(rng.integers(1, 60))
            filters = int(rng.integers(1, 20))
            # Bound values so every partial sum stays far below 2^53.
            lhs = rng.integers(0, 1 << 22, size=(patches, taps))
            rhs = rng.integers(0, 1 << 22, size=(taps, filters))
            expected = lhs @ rhs  # exact int64 reference
            result = exact_int_matmul(lhs, rhs.astype(np.float64))
            assert result.dtype == np.int64
            np.testing.assert_array_equal(result, expected)

    @staticmethod
    def _column_with_sum(total: int) -> np.ndarray:
        """A column of 8-bit codes summing exactly to ``total``."""
        full, rem = divmod(total, 255)
        col = [255] * full + ([rem] if rem else [])
        return np.array(col, dtype=np.int64)

    def test_f32_promotion_boundary_exact_on_both_sides(self, rng):
        """255 * max_col_sum straddling 2^24: f32 allowed below, denied at/above."""
        threshold = _F32_EXACT_BOUND // 255  # last column sum with 255*s < 2^24
        assert 255 * threshold < _F32_EXACT_BOUND <= 255 * (threshold + 1)
        for col_sum, expect_f32 in ((threshold, True), (threshold + 1, False)):
            col = self._column_with_sum(col_sum)
            weights = np.concatenate(
                [col[:, None], np.zeros((col.shape[0], 1), dtype=np.int64)], axis=1
            )
            op = _WeightOperand(weights)
            assert (op._f32 is not None) == expect_f32
            # All-255 activations hit the boundary product sum exactly.
            acts = np.full((3, weights.shape[0]), 255, dtype=np.uint8)
            expected = acts.astype(np.int64) @ weights
            assert expected.max() == 255 * col_sum
            np.testing.assert_array_equal(op.matmul(acts), expected)

    def test_randomized_weight_operand_parity(self, rng):
        """Any uint8 operand mix: _WeightOperand == int64 matmul, both paths."""
        for _ in range(20):
            taps = int(rng.integers(1, 50))
            filters = int(rng.integers(1, 12))
            weights = rng.integers(0, 256, size=(taps, filters), dtype=np.uint8)
            acts = rng.integers(0, 256, size=(int(rng.integers(1, 30)), taps), dtype=np.uint8)
            op = _WeightOperand(weights.astype(np.int64))
            np.testing.assert_array_equal(
                op.matmul(acts), acts.astype(np.int64) @ weights.astype(np.int64)
            )

    def test_empty_weights(self):
        for shape in ((0, 4), (5, 0), (0, 0)):
            weights = np.zeros(shape, dtype=np.int64)
            op = _WeightOperand(weights)
            # Empty weights trivially satisfy the f32 bound.
            assert op._f32 is not None
            acts = np.zeros((3, shape[0]), dtype=np.uint8)
            result = op.matmul(acts)
            assert result.shape == (3, shape[1])
            np.testing.assert_array_equal(result, np.zeros((3, shape[1]), dtype=np.int64))

    def test_signed_weights_disable_f32_but_stay_exact(self, rng):
        weights = rng.integers(-4, 4, size=(6, 3))
        weights[0, 0] = -1  # force at least one negative entry
        op = _WeightOperand(weights.astype(np.int64))
        assert op._f32 is None
        acts = rng.integers(0, 256, size=(9, 6), dtype=np.uint8)
        np.testing.assert_array_equal(op.matmul(acts), acts.astype(np.int64) @ weights)

    def test_out_of_range_weights_disable_f32_but_stay_exact(self, rng):
        weights = rng.integers(0, 2, size=(6, 3)).astype(np.int64)
        weights[0, 0] = 300  # beyond 8-bit codes: f32 bound argument is void
        op = _WeightOperand(weights)
        assert op._f32 is None
        acts = rng.integers(0, 256, size=(9, 6), dtype=np.uint8)
        np.testing.assert_array_equal(op.matmul(acts), acts.astype(np.int64) @ weights)

    def test_wide_activations_bypass_f32_path(self, rng):
        """Non-uint8 activations must never take the f32 shortcut, even when
        the weight-side bound holds."""
        weights = rng.integers(0, 3, size=(5, 2)).astype(np.int64)
        op = _WeightOperand(weights)
        assert op._f32 is not None  # tiny column sums: f32 allowed for uint8
        acts = rng.integers(0, 1 << 24, size=(7, 5)).astype(np.int64)
        np.testing.assert_array_equal(op.matmul(acts), acts @ weights)

    def test_accurate_product_cross_check(self, rng):
        """End cross-check: the boundary machinery agrees with the reference."""
        weights = rng.integers(0, 256, size=(11, 4), dtype=np.uint8)
        acts = rng.integers(0, 256, size=(13, 11), dtype=np.uint8)
        np.testing.assert_array_equal(
            _WeightOperand(weights.astype(np.int64)).matmul(acts),
            accurate_product_sums(acts, weights),
        )
