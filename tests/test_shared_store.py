"""SharedArrayStore and the shared publication of models and datasets."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core.shared_store import SharedArrayStore
from repro.datasets.synthetic import SyntheticCifarConfig, make_synthetic_cifar
from repro.simulation.campaign import (
    TrainedModel,
    publish_datasets,
    publish_trained_models,
)


@pytest.fixture(scope="module")
def sample_arrays():
    rng = np.random.default_rng(42)
    return {
        "a": rng.normal(size=(7, 5)),
        "b": rng.integers(0, 255, size=(3, 4, 2), dtype=np.uint8),
        "c": rng.normal(size=11).astype(np.float32),
        "empty-ish": np.zeros((1,), dtype=np.int64),
    }


class TestSharedArrayStore:
    @pytest.mark.parametrize("prefer_shm", [True, False])
    def test_publish_get_round_trip(self, sample_arrays, prefer_shm):
        store = SharedArrayStore.publish(sample_arrays, prefer_shared_memory=prefer_shm)
        try:
            assert set(store.keys()) == set(sample_arrays)
            assert "a" in store and "nope" not in store
            assert store.nbytes_shared() == sum(a.nbytes for a in sample_arrays.values())
            for key, original in sample_arrays.items():
                view = store.get(key)
                np.testing.assert_array_equal(view, original)
                assert view.dtype == original.dtype
                assert not view.flags.writeable
                assert not view.flags.owndata  # a view, not a copy
        finally:
            view = None  # release the last view before the block unlinks
            store.unlink()

    def test_memmap_fallback_creates_and_removes_file(self, sample_arrays):
        store = SharedArrayStore.publish(sample_arrays, prefer_shared_memory=False)
        assert store.kind == "memmap" and os.path.exists(store.name)
        np.testing.assert_array_equal(store.get("a"), sample_arrays["a"])
        store.unlink()
        assert not os.path.exists(store.name)
        store.unlink()  # idempotent

    def test_pickle_round_trip_attaches_lazily(self, sample_arrays):
        """The pickled store carries layout only — a consumer re-attaches."""
        store = SharedArrayStore.publish(sample_arrays)
        try:
            blob = pickle.dumps(store)
            assert len(blob) < 4096  # no array bytes in the pickle
            consumer = pickle.loads(blob)
            view = None
            try:
                view = consumer.get("b")
                np.testing.assert_array_equal(view, sample_arrays["b"])
            finally:
                # drop the consumer's mapping before the publisher unlinks
                del view
                consumer._buf = None
                consumer._handle = None
        finally:
            store.unlink()

    def test_non_contiguous_input_is_published_correctly(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        strided = base[:, ::2]
        store = SharedArrayStore.publish({"s": strided})
        try:
            np.testing.assert_array_equal(store.get("s"), strided)
        finally:
            store.unlink()


class TestPublishDatasets:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_synthetic_cifar(
            SyntheticCifarConfig(num_classes=3, train_per_class=6, test_per_class=4, seed=9)
        )

    def test_attach_round_trip(self, dataset):
        shared = publish_datasets({dataset.name: dataset})
        try:
            assert shared.nbytes_shared() == sum(
                getattr(dataset, f).nbytes
                for f in ("train_images", "train_labels", "test_images", "test_labels")
            )
            attached = shared.attach()[dataset.name]
            assert attached.num_classes == dataset.num_classes
            for field_name in ("train_images", "train_labels", "test_images", "test_labels"):
                view = getattr(attached, field_name)
                np.testing.assert_array_equal(view, getattr(dataset, field_name))
                assert not view.flags.writeable
            # attach() is idempotent per process
            assert shared.attach()[dataset.name] is attached
        finally:
            del attached, view
            shared.unlink()

    def test_memmap_fallback(self, dataset):
        shared = publish_datasets({dataset.name: dataset}, prefer_shared_memory=False)
        assert shared.store.kind == "memmap"
        attached = shared.attach()[dataset.name]
        np.testing.assert_array_equal(attached.test_labels, dataset.test_labels)
        del attached
        shared.unlink()
        assert not os.path.exists(shared.store.name)


class _FreshStateModel:
    """Minimal trained-model stand-in whose ``state_dict`` returns *fresh*
    arrays on every call — the access pattern that used to let CPython
    reuse a freed array's ``id()`` across ``publish_trained_models``'s
    model loop and silently alias one model's parameters to another's."""

    def __init__(self, seed: int, n_params: int = 8, size: int = 17):
        rng = np.random.default_rng(seed)
        self._params = {f"p{i}": rng.normal(size=size) for i in range(n_params)}

    def state_dict(self) -> dict[str, np.ndarray]:
        return {key: value.copy() for key, value in self._params.items()}


class TestPublishTrainedModelsAliasing:
    def test_fresh_state_dict_arrays_never_alias_across_models(self):
        """Regression: every (model, parameter) must land in the shared block
        under its own token with its own bytes, even when each model's
        ``state_dict`` materializes throwaway arrays whose ids the allocator
        is free to recycle between loop iterations."""
        models = [
            TrainedModel(
                name=f"stub{seed}",
                dataset_name="none",
                model=_FreshStateModel(seed),
                float_accuracy=0.0,
            )
            for seed in (1, 2, 3, 4)
        ]
        store = publish_trained_models(models)
        try:
            for index, trained in enumerate(models):
                for key, value in trained.model.state_dict().items():
                    token = f"{index}:{key}"
                    assert token in store.spec, f"missing token {token}"
                    np.testing.assert_array_equal(store.store.get(token), value)
        finally:
            store.unlink()

    def test_graph_models_share_identical_arrays_once(self, tiny_dataset, trained_tiny_model):
        """Dedup by identity still works: publishing the same model twice
        stores its parameter arrays once."""
        trained = TrainedModel(
            name="twin",
            dataset_name=tiny_dataset.name,
            model=trained_tiny_model,
            float_accuracy=0.5,
        )
        single = publish_trained_models([trained])
        try:
            n_single = len(single.spec)
            nbytes_single = single.nbytes_shared()
        finally:
            single.unlink()
        double = publish_trained_models([trained, trained])
        try:
            # same underlying arrays -> no extra entries, no extra bytes
            assert len(double.spec) == n_single
            assert double.nbytes_shared() == nbytes_single
            first, second = double.attach()
            x = tiny_dataset.test_images[:4]
            np.testing.assert_array_equal(first.model.forward(x), second.model.forward(x))
            np.testing.assert_array_equal(
                first.model.forward(x), trained_tiny_model.forward(x)
            )
        finally:
            first = second = None
            double.unlink()
